"""Unit tests for measurement post-processing (sampling, THD, metrics)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.measure import (
    accumulated_deviation,
    harmonic_amplitudes,
    max_abs_deviation,
    overshoot,
    peak_to_peak,
    resample,
    rms,
    settling_time,
    steady_state_periods,
    thd_percent,
    window,
)


def sine_samples(freq=1e3, spp=64, periods=4, amplitude=1.0, offset=0.0,
                 harmonics=()):
    t = np.arange(spp * periods) / (spp * freq)
    v = offset + amplitude * np.sin(2 * np.pi * freq * t)
    for order, amp in harmonics:
        v += amp * np.sin(2 * np.pi * order * freq * t)
    return t, v


class TestSampling:
    def test_window_inclusive(self):
        t = np.linspace(0, 1, 11)
        v = t.copy()
        tw, vw = window(t, v, 0.2, 0.5)
        assert tw[0] == pytest.approx(0.2)
        assert tw[-1] == pytest.approx(0.5)
        assert len(tw) == 4

    def test_resample_doubles_rate(self):
        t = np.linspace(0, 1e-3, 11)
        v = np.linspace(0, 1, 11)
        t2, v2 = resample(t, v, 20e3)
        assert len(t2) == 21
        np.testing.assert_allclose(v2, np.linspace(0, 1, 21), atol=1e-12)

    def test_steady_state_periods(self):
        t, v = sine_samples(freq=1e3, spp=10, periods=5)
        tw, vw = steady_state_periods(t, v, 1e3, 2)
        assert tw[0] >= t[-1] - 2e-3 - 1e-9

    def test_steady_state_too_short_raises(self):
        t, v = sine_samples(freq=1e3, spp=10, periods=2)
        with pytest.raises(ValueError):
            steady_state_periods(t, v, 1e3, 5)


class TestTHD:
    def test_pure_sine_has_zero_thd(self):
        _, v = sine_samples()
        assert thd_percent(v, 64, 4) == pytest.approx(0.0, abs=1e-10)

    def test_known_second_harmonic(self):
        _, v = sine_samples(harmonics=((2, 0.1),))
        assert thd_percent(v, 64, 4) == pytest.approx(10.0, rel=1e-6)

    def test_multiple_harmonics_rss(self):
        _, v = sine_samples(harmonics=((2, 0.03), (3, 0.04)))
        assert thd_percent(v, 64, 4) == pytest.approx(5.0, rel=1e-6)

    def test_dc_offset_ignored(self):
        _, v = sine_samples(offset=3.0, harmonics=((2, 0.1),))
        assert thd_percent(v, 64, 4) == pytest.approx(10.0, rel=1e-6)

    def test_dead_output_returns_inf(self):
        assert thd_percent(np.zeros(256), 64, 4) == float("inf")

    def test_harmonic_amplitudes_values(self):
        _, v = sine_samples(amplitude=2.0, harmonics=((3, 0.5),))
        amps = harmonic_amplitudes(v, 64, 4, 4)
        assert amps[0] == pytest.approx(2.0, rel=1e-9)
        assert amps[2] == pytest.approx(0.5, rel=1e-9)
        assert amps[1] == pytest.approx(0.0, abs=1e-12)

    def test_too_few_samples_raises(self):
        with pytest.raises(ValueError):
            thd_percent(np.zeros(10), 64, 4)

    def test_harmonics_beyond_nyquist_raise(self):
        _, v = sine_samples(spp=8)
        with pytest.raises(ValueError):
            harmonic_amplitudes(v, 8, 4, n_harmonics=6)

    def test_uses_last_periods_only(self):
        """Leading garbage (start-up transient) must not affect THD."""
        _, clean = sine_samples(periods=2)
        noisy_head = np.concatenate([np.random.default_rng(1).normal(
            0, 1, 128), clean])
        assert thd_percent(noisy_head, 64, 2) == pytest.approx(0.0,
                                                               abs=1e-10)


class TestMetrics:
    def test_max_abs_deviation(self):
        a = np.array([1.0, 2.0, 3.0])
        b = np.array([1.1, 1.5, 3.0])
        assert max_abs_deviation(a, b) == pytest.approx(0.5)

    def test_accumulated_deviation_normalized(self):
        a = np.zeros(4)
        b = np.array([1.0, -1.0, 1.0, -1.0])
        assert accumulated_deviation(a, b) == pytest.approx(1.0)
        assert accumulated_deviation(a, b, normalize=False) == pytest.approx(
            4.0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            max_abs_deviation(np.zeros(3), np.zeros(4))

    def test_rms_of_sine(self):
        _, v = sine_samples(amplitude=2.0)
        assert rms(v) == pytest.approx(2.0 / np.sqrt(2), rel=1e-6)

    def test_peak_to_peak(self):
        _, v = sine_samples(amplitude=1.5)
        assert peak_to_peak(v) == pytest.approx(3.0, rel=1e-3)

    def test_settling_time_exponential(self):
        t = np.linspace(0, 5, 501)
        v = 1 - np.exp(-t)
        ts = settling_time(t, v, final_value=1.0, tolerance=0.05)
        assert ts == pytest.approx(3.0, abs=0.05)  # ln(20) ~ 3

    def test_settling_time_already_settled(self):
        t = np.linspace(0, 1, 11)
        assert settling_time(t, np.ones(11), 1.0, 0.01) == 0.0

    def test_overshoot_positive_step(self):
        v = np.array([0.0, 0.5, 1.2, 1.0, 1.0])
        assert overshoot(v, 0.0, 1.0) == pytest.approx(0.2)

    def test_overshoot_monotonic_is_zero(self):
        v = np.array([0.0, 0.5, 0.9, 1.0])
        assert overshoot(v, 0.0, 1.0) == 0.0

    def test_overshoot_negative_step(self):
        v = np.array([1.0, 0.4, -0.1, 0.0])
        assert overshoot(v, 1.0, 0.0) == pytest.approx(0.1)

    @given(st.lists(st.floats(-10, 10), min_size=2, max_size=50))
    def test_deviation_metrics_nonnegative(self, values):
        observed = np.array(values)
        nominal = np.zeros_like(observed)
        assert max_abs_deviation(nominal, observed) >= 0.0
        assert accumulated_deviation(nominal, observed) >= 0.0

    @given(st.lists(st.floats(-10, 10), min_size=2, max_size=50))
    def test_max_bounds_mean(self, values):
        """max |d| >= mean |d| always."""
        observed = np.array(values)
        nominal = np.zeros_like(observed)
        assert (max_abs_deviation(nominal, observed) + 1e-12
                >= accumulated_deviation(nominal, observed))
