"""Shared fixtures for the test suite.

Expensive objects (macros, testbenches, generation runs) are
session-scoped: the RC ladder pipeline runs once and many tests inspect
it.  IV-converter fixtures stay cheap (operating points, single faults);
the heavy 55-fault run lives in the benchmark harness, not here.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit import CircuitBuilder
from repro.macros import IVConverterMacro, RCLadderMacro
from repro.testgen import GenerationSettings, generate_tests


@pytest.fixture(scope="session")
def rc_macro():
    """The fast RC-ladder macro."""
    return RCLadderMacro()

@pytest.fixture(scope="session")
def rc_bench(rc_macro):
    """Testbench of the RC ladder (fast boxes)."""
    return rc_macro.testbench()


@pytest.fixture(scope="session")
def rc_generation(rc_macro):
    """A full generation run over the RC ladder's 6 bridging faults."""
    return generate_tests(
        rc_macro.circuit, rc_macro.test_configurations(),
        rc_macro.fault_dictionary(), GenerationSettings())


@pytest.fixture(scope="session")
def iv_macro():
    """The IV-converter macro (fast boxes)."""
    return IVConverterMacro()


@pytest.fixture(scope="session")
def iv_bench(iv_macro):
    """Testbench of the IV-converter (fast boxes)."""
    return iv_macro.testbench()


@pytest.fixture()
def divider_circuit():
    """5 V source into a 10k/10k divider (analytic reference)."""
    b = CircuitBuilder("divider")
    b.voltage_source("VIN", "in", "0", 5.0)
    b.resistor("R1", "in", "mid", "10k")
    b.resistor("R2", "mid", "0", "10k")
    return b.build()


@pytest.fixture()
def rng():
    """Deterministic RNG for randomized tests."""
    return np.random.default_rng(20250610)
