"""Tests for the macro layer: registry, RC ladder, IV-converter bring-up."""

import numpy as np
import pytest

from repro.analysis import dc_sweep, operating_point, transient
from repro.circuit import Mosfet
from repro.errors import TestGenerationError
from repro.macros import (
    IVConverterMacro,
    Macro,
    RCLadderMacro,
    available_macros,
    get_macro,
    register_macro,
)
from repro.measure import thd_percent
from repro.waveforms import SineWave


class TestRegistry:
    def test_available(self):
        assert "iv-converter" in available_macros()
        assert "rc-ladder" in available_macros()

    def test_get_macro(self):
        assert isinstance(get_macro("iv-converter"), IVConverterMacro)

    def test_unknown_macro_raises(self):
        with pytest.raises(TestGenerationError):
            get_macro("flux-capacitor")

    def test_register_and_overwrite_protection(self):
        class Dummy(RCLadderMacro):
            macro_type = "dummy-type"

        register_macro("dummy-type", Dummy)
        assert "dummy-type" in available_macros()
        with pytest.raises(TestGenerationError):
            register_macro("dummy-type", Dummy)
        register_macro("dummy-type", Dummy, overwrite=True)


class TestRCLadder:
    def test_standard_nodes(self, rc_macro):
        assert rc_macro.standard_nodes == ("vin", "n1", "vout", "0")

    def test_fault_universe(self, rc_macro):
        faults = rc_macro.fault_dictionary()
        assert len(faults) == 6
        assert faults.counts_by_type() == {"bridge": 6}

    def test_dc_transfer(self, rc_macro):
        sweep = dc_sweep(rc_macro.circuit, "VIN", np.array([0.0, 2.0, 4.0]))
        # divider: RL/(R1+R2+RL) = 10/12
        np.testing.assert_allclose(sweep.v("vout"),
                                   np.array([0, 2, 4]) * 10 / 12,
                                   rtol=1e-6)

    def test_circuit_cached(self, rc_macro):
        assert rc_macro.circuit is rc_macro.circuit

    def test_configurations_fast_mode(self, rc_macro):
        configs = rc_macro.test_configurations()
        assert [c.name for c in configs] == ["dc-out", "step-mean"]

    def test_configurations_calibrated_mode(self, tmp_path):
        macro = RCLadderMacro()
        configs = macro.test_configurations(box_mode="calibrated",
                                            cache_dir=tmp_path)
        # calibrated boxes must be positive everywhere sampled
        for config in configs:
            seed = config.parameters.seeds
            assert np.all(config.box_function(seed) > 0.0)
        assert list(tmp_path.glob("box_*.json"))

    def test_bad_box_mode_raises(self, rc_macro):
        with pytest.raises(TestGenerationError):
            rc_macro.test_configurations(box_mode="psychic")


class TestIVConverterStructure:
    def test_paper_node_count(self, iv_macro):
        """10 standard nodes -> C(10,2) = 45 bridging faults."""
        assert len(iv_macro.standard_nodes) == 10

    def test_paper_device_count(self, iv_macro):
        mosfets = iv_macro.circuit.elements_of_type(Mosfet)
        assert len(mosfets) == 10

    def test_fault_dictionary_is_55(self, iv_macro):
        assert len(iv_macro.fault_dictionary()) == 55

    def test_five_configurations(self, iv_macro):
        configs = iv_macro.test_configurations()
        assert [c.name for c in configs] == [
            "dc-output", "dc-supply-current", "thd", "step-max",
            "step-accumulate"]

    def test_parameter_arity_matches_paper(self, iv_macro):
        """#1/#2 have one parameter, #3/#4/#5 have two (paper §3.4)."""
        arity = {c.name: c.n_parameters
                 for c in iv_macro.test_configurations()}
        assert arity == {"dc-output": 1, "dc-supply-current": 1,
                         "thd": 2, "step-max": 2, "step-accumulate": 2}

    def test_descriptions_render(self, iv_macro):
        for description in iv_macro.configuration_descriptions():
            card = description.describe()
            assert "Macro type: iv-converter" in card


class TestIVConverterBringUp:
    def test_operating_point(self, iv_macro):
        op = operating_point(iv_macro.circuit)
        assert op.v("vref") == pytest.approx(2.5, abs=0.01)
        assert op.v("vout") == pytest.approx(2.5, abs=0.05)
        assert 0.9 < op.v("nbias") < 1.2
        # supply current in a sane envelope
        assert 100e-6 < -op.i("VDD") < 400e-6

    def test_transimpedance_is_rf(self, iv_macro):
        sweep = dc_sweep(iv_macro.circuit, "IIN",
                         np.linspace(0, 40e-6, 5))
        gain = np.polyfit(sweep.values, sweep.v("vout"), 1)[0]
        assert gain == pytest.approx(-30e3, rel=0.01)

    def test_output_linear_over_range(self, iv_macro):
        sweep = dc_sweep(iv_macro.circuit, "IIN",
                         np.linspace(0, 40e-6, 9))
        residual = sweep.v("vout") - np.polyval(
            np.polyfit(sweep.values, sweep.v("vout"), 1), sweep.values)
        assert np.max(np.abs(residual)) < 5e-3

    def test_nominal_thd_is_low(self, iv_macro):
        """A healthy converter barely distorts mid-range."""
        freq, spp = 20e3, 64
        wave = SineWave(offset=20e-6, amplitude=9e-6, freq=freq)
        circuit = iv_macro.circuit.replace_element(
            type(iv_macro.circuit.element("IIN"))(
                "IIN", "0", "iin", wave))
        result = transient(circuit, t_stop=4 / freq, dt=1 / (spp * freq))
        assert thd_percent(result.v("vout"), spp, 2) < 0.1

    def test_step_settles_within_window(self, iv_macro):
        from repro.waveforms import StepWave
        wave = StepWave(base=5e-6, elev=30e-6, t_step=10e-9,
                        slew_rate=800.0)
        circuit = iv_macro.circuit.replace_element(
            type(iv_macro.circuit.element("IIN"))(
                "IIN", "0", "iin", wave))
        result = transient(circuit, t_stop=7.5e-6, dt=1 / 40e6)
        final = result.v("vout")[-1]
        expected = 2.5 - 35e-6 * 30e3
        assert final == pytest.approx(expected, abs=0.05)
        # settled: last microsecond is flat
        tail = result.v("vout")[result.t > 6.5e-6]
        assert np.max(tail) - np.min(tail) < 2e-3

    def test_paper_sample_rate_option(self):
        macro = IVConverterMacro(sample_rate=100e6)
        configs = {c.name: c for c in macro.test_configurations()}
        assert configs["step-max"].procedure.sample_rate == 100e6


class TestMacroBase:
    def test_testbench_convenience(self, rc_macro):
        bench = rc_macro.testbench()
        assert bench.configuration_names == ("dc-out", "step-mean")

    def test_macro_is_abstract(self):
        with pytest.raises(TypeError):
            Macro()  # abstract methods missing
