"""Tests for the OTA macro (second macro type)."""

import numpy as np
import pytest

from repro.analysis import dc_sweep, operating_point
from repro.circuit import Mosfet
from repro.compaction import CompactionSettings, collapse_test_set
from repro.faults import BridgingFault
from repro.macros import OTAMacro, get_macro
from repro.testgen import GenerationSettings, generate_tests


@pytest.fixture(scope="module")
def ota():
    return OTAMacro()


class TestStructure:
    def test_registered(self):
        assert isinstance(get_macro("ota"), OTAMacro)

    def test_fault_universe(self, ota):
        faults = ota.fault_dictionary()
        # C(8,2) = 28 bridges + 6 pinholes
        assert faults.counts_by_type() == {"bridge": 28, "pinhole": 6}

    def test_four_configurations(self, ota):
        names = [c.name for c in ota.test_configurations()]
        assert names == ["dc-transfer", "dc-supply-current",
                         "step-settle", "ac-gain"]

    def test_descriptions_carry_macro_type(self, ota):
        for description in ota.configuration_descriptions():
            assert description.macro_type == "ota"

    def test_six_mosfets(self, ota):
        assert len(ota.circuit.elements_of_type(Mosfet)) == 6


class TestBringUp:
    def test_operating_point(self, ota):
        op = operating_point(ota.circuit)
        assert 0.9 < op.v("nbias") < 1.2
        assert 1.0 < op.v("ntail") < 1.7
        assert 0.5 < op.v("vout") < 4.5

    def test_transfer_has_gain(self, ota):
        sweep = dc_sweep(ota.circuit, "VINP",
                         np.linspace(2.45, 2.55, 11))
        gain = np.gradient(sweep.v("vout"), sweep.values)
        assert np.max(np.abs(gain)) > 20.0

    def test_transfer_monotone_rising(self, ota):
        """Positive input raised -> output rises (M1 steals tail
        current, mirror pushes more into vout)."""
        sweep = dc_sweep(ota.circuit, "VINP",
                         np.linspace(2.45, 2.55, 11))
        assert sweep.v("vout")[-1] > sweep.v("vout")[0]


class TestACGainConfiguration:
    def test_nominal_gain_sensible(self, ota):
        """At the balanced bias the output sits near M2's triode edge,
        so the small-signal gain is modest (a few dB) — the DC sweep's
        61 V/V slope lives a few tens of mV off-balance."""
        config = [c for c in ota.test_configurations()
                  if c.name == "ac-gain"][0]
        gain_db = config.procedure.simulate(ota.circuit, {"freq": 10e3})
        assert 2.0 < gain_db[0] < 20.0

    def test_gain_rolls_off(self, ota):
        config = [c for c in ota.test_configurations()
                  if c.name == "ac-gain"][0]
        low = config.procedure.simulate(ota.circuit, {"freq": 1e3})[0]
        high = config.procedure.simulate(ota.circuit, {"freq": 1e6})[0]
        assert high < low  # CL pole inside the band

    def test_detects_load_fault(self, ota):
        """A bridge loading the mirror gate kills gain -> detected."""
        from repro.testgen import MacroTestbench
        config = [c for c in ota.test_configurations()
                  if c.name == "ac-gain"]
        bench = MacroTestbench(ota.circuit, config, ota.options)
        fault = BridgingFault(node_a="n1", node_b="vdd", impact=10e3)
        report = bench.sensitivity(fault, "ac-gain", [10e3])
        assert report.detected

    def test_dead_output_is_finite(self, ota):
        """A hard output-to-ground short floors the dB reading instead
        of producing -inf."""
        from repro.testgen import MacroTestbench
        config = [c for c in ota.test_configurations()
                  if c.name == "ac-gain"]
        bench = MacroTestbench(ota.circuit, config, ota.options)
        fault = BridgingFault(node_a="vout", node_b="0", impact=1.0)
        report = bench.sensitivity(fault, "ac-gain", [10e3])
        assert np.isfinite(report.value)
        assert report.detected


class TestPipeline:
    def test_dc_generation_subset(self, ota):
        """The full pipeline runs on the OTA type (DC configs, a few
        faults) — the macro-type-generality claim of paper §2.1."""
        configs = [c for c in ota.test_configurations()
                   if c.name.startswith("dc-")]
        faults = [
            BridgingFault(node_a="n1", node_b="vout", impact=10e3),
            BridgingFault(node_a="vdd", node_b="0", impact=10e3),
            BridgingFault(node_a="ntail", node_b="0", impact=10e3),
        ]
        generation = generate_tests(ota.circuit, configs, faults,
                                    GenerationSettings())
        assert generation.n_detected == 3
        # supply short must be owned by the IDD configuration
        by_fault = {t.fault.fault_id: t for t in generation.tests}
        assert by_fault["bridge:0:vdd"].config_name == "dc-supply-current"

    def test_compaction_runs(self, ota):
        from repro.testgen import MacroTestbench
        configs = [c for c in ota.test_configurations()
                   if c.name.startswith("dc-")]
        faults = [
            BridgingFault(node_a="n1", node_b="vout", impact=10e3),
            BridgingFault(node_a="ntail", node_b="0", impact=10e3),
        ]
        generation = generate_tests(ota.circuit, configs, faults,
                                    GenerationSettings())
        bench = MacroTestbench(ota.circuit, configs, ota.options)
        result = collapse_test_set(generation, bench,
                                   CompactionSettings(delta=0.1))
        assert result.n_compact_tests <= result.n_original_tests
