"""Large-macro zoo: structure, registry, and full-pipeline contracts.

The zoo (two-stage Miller op-amp, folded-cascode OTA, N-section active
filter) exists to prove the sparse backend on realistic macros.  These
tests pin:

* block-composed netlists bias correctly (closed loops settle where the
  feedback equation says they must);
* registry / CLI integration (``--macro``, ``--sections``);
* the *full* generate -> collapse -> coverage pipeline runs unmodified
  on a >= 100-node zoo member through the sparse backend.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import operating_point
from repro.analysis.backend import (
    BACKEND_SPARSE,
    backend_override,
    sparse_available,
)
from repro import errors
from repro.cli import main as cli_main
from repro.compaction import CompactionSettings, collapse_test_set, \
    evaluate_coverage
from repro.macros import (
    ActiveFilterMacro,
    FoldedCascodeOTAMacro,
    TwoStageOpampMacro,
    available_macros,
    get_macro,
)
from repro.testgen import GenerationSettings, MacroTestbench, \
    generate_tests

needs_scipy = pytest.mark.skipif(not sparse_available(),
                                 reason="scipy.sparse unavailable")


class TestTwoStageOpamp:
    def test_bias_and_closed_loop_gain(self):
        macro = TwoStageOpampMacro()
        op = operating_point(macro.circuit)
        # Feedback divider fixes vout = 2 * vinp; vinn sits at vinp.
        assert op.v("vout") == pytest.approx(3.0, abs=0.05)
        assert op.v("vinn") == pytest.approx(1.5, abs=0.025)
        # Bias chain and tail in saturation territory.
        assert 0.8 < op.v("nbias") < 1.5
        assert 0.2 < op.v("ntail") < 1.0

    def test_transfer_tracks_gain_of_two(self):
        macro = TwoStageOpampMacro()
        from repro.analysis import dc_sweep
        levels = np.linspace(1.1, 1.9, 5)
        sweep = dc_sweep(macro.circuit, "VINP", levels)
        vouts = [p.v("vout") for p in sweep.points]
        np.testing.assert_allclose(vouts, 2.0 * levels, rtol=0.02)

    def test_configurations_and_dictionary(self):
        macro = TwoStageOpampMacro(fault_top_n=24)
        names = [d.name for d in macro.configuration_descriptions()]
        assert names == ["dc-transfer", "dc-supply-current",
                         "step-settle"]
        faults = list(macro.fault_dictionary())
        assert len(faults) == 24
        assert macro.test_configurations()  # fast boxes build


class TestFoldedCascode:
    def test_unity_buffer_bias(self):
        macro = FoldedCascodeOTAMacro()
        op = operating_point(macro.circuit)
        # Unity feedback through a gate: vout == vinn == ~vinp.
        assert op.v("vout") == pytest.approx(op.v("vinn"), abs=1e-6)
        assert op.v("vout") == pytest.approx(1.5, abs=0.05)
        # Fold nodes low, cascoded mirror node near the top rail.
        assert 0.3 < op.v("nfa") < 1.2
        assert 0.3 < op.v("nfb") < 1.2
        assert 3.0 < op.v("na") < 4.5

    def test_buffer_tracks_input(self):
        macro = FoldedCascodeOTAMacro()
        from repro.analysis import dc_sweep
        levels = np.linspace(1.25, 1.75, 5)
        sweep = dc_sweep(macro.circuit, "VINP", levels)
        vouts = [p.v("vout") for p in sweep.points]
        np.testing.assert_allclose(vouts, levels, atol=0.02)

    def test_dictionary_covers_mosfets(self):
        macro = FoldedCascodeOTAMacro(fault_top_n=None)
        faults = list(macro.fault_dictionary())
        pinholes = [f for f in faults if f.fault_type == "pinhole"]
        assert len(pinholes) == 11  # one per device


class TestActiveFilter:
    def test_size_scales_linearly(self):
        for n in (2, 10, 60):
            macro = ActiveFilterMacro(n_sections=n)
            nodes = {node for e in macro.circuit for node in e.nodes}
            assert len(nodes) == 2 * n + 2  # vin + 2/section + ground

    def test_rejects_tiny_ladder(self):
        with pytest.raises(errors.TestGenerationError, match="sections"):
            ActiveFilterMacro(n_sections=1)

    def test_unity_dc_transfer_even_sections(self):
        macro = ActiveFilterMacro(n_sections=10)
        op = operating_point(macro.circuit)
        assert op.v("vout") == pytest.approx(2.0, rel=1e-6)

    def test_standard_nodes_are_sparse_taps(self):
        macro = ActiveFilterMacro(n_sections=60)
        nodes = macro.standard_nodes
        assert nodes[0] == "vin" and nodes[-1] == "vout"
        assert len(nodes) <= 8  # pads only, not the whole ladder
        assert macro.mid_tap in nodes


class TestRegistryAndCli:
    def test_zoo_registered(self):
        names = available_macros()
        for name in ("two-stage-opamp", "folded-cascode-ota",
                     "active-filter"):
            assert name in names

    def test_get_macro_forwards_kwargs(self):
        macro = get_macro("active-filter", n_sections=8)
        assert macro.n_sections == 8

    def test_cli_describe_zoo_macro(self, capsys):
        assert cli_main(["describe", "--macro", "active-filter",
                         "--sections", "4"]) == 0
        out = capsys.readouterr().out
        assert "dc-out" in out and "dc-mid" in out

    def test_cli_sections_rejected_for_fixed_macro(self, capsys):
        assert cli_main(["describe", "--macro", "iv-converter",
                         "--sections", "4"]) != 0
        assert "--sections" in capsys.readouterr().err


@needs_scipy
class TestSparsePipeline:
    def test_full_pipeline_on_large_ladder(self):
        """generate -> collapse -> coverage on a 100+-node macro, all
        through the sparse backend (the tentpole acceptance run)."""
        macro = ActiveFilterMacro(n_sections=60, fault_top_n=8)
        faults = macro.fault_dictionary()
        configurations = macro.test_configurations()
        with backend_override(BACKEND_SPARSE):
            result = generate_tests(macro.circuit, configurations,
                                    faults, GenerationSettings())
            bench = MacroTestbench(macro.circuit, configurations,
                                   macro.options)
            compaction = collapse_test_set(result, bench,
                                           CompactionSettings())
            detected = [t.fault for t in result.tests
                        if t.detected_at_dictionary]
            assert detected, "generation detected no faults"
            report = evaluate_coverage(bench, detected,
                                       list(compaction.tests))
        assert compaction.n_compact_tests <= compaction.n_original_tests
        assert report.n_covered >= 0.5 * report.n_faults
