"""Dense/sparse backend equivalence and selection contracts.

The sparse backend must be *invisible* except for speed: identical
verdicts on every fault screen, identical error behaviour on singular
systems, and a graceful degrade to dense when SciPy is absent.  These
tests pin all three, plus the ``REPRO_BACKEND`` /
``REPRO_SPARSE_THRESHOLD`` selection knobs.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.analysis.backend as backend
from repro.analysis import Factorization, backend_override, select_backend
from repro.analysis.backend import (
    BACKEND_AUTO,
    BACKEND_DENSE,
    BACKEND_SPARSE,
    DEFAULT_SPARSE_THRESHOLD,
    DenseLU,
    SparseLU,
    solve_columns,
    sparse_available,
)
from repro.errors import AnalysisError, SingularMatrixError
from repro.macros import ActiveFilterMacro, TwoStageOpampMacro
from repro.testgen import execution

needs_scipy = pytest.mark.skipif(not sparse_available(),
                                 reason="scipy.sparse unavailable")


def _random_system(rng, n, k=3):
    """A well-conditioned sparse-ish test system with k RHS columns."""
    a = np.diag(rng.uniform(2.0, 4.0, size=n))
    for _ in range(3 * n):
        i, j = rng.integers(0, n, size=2)
        a[i, j] += rng.uniform(-0.4, 0.4)
    return a, rng.normal(size=(n, k))


# ---------------------------------------------------------------------------
# selection knobs
# ---------------------------------------------------------------------------
class TestBackendSelection:
    def test_auto_small_system_is_dense(self):
        with backend_override(BACKEND_AUTO):
            assert select_backend(14) == BACKEND_DENSE

    def test_auto_threshold_crossover(self):
        with backend_override(BACKEND_AUTO):
            expected = (BACKEND_SPARSE if sparse_available()
                        else BACKEND_DENSE)
            assert select_backend(DEFAULT_SPARSE_THRESHOLD) == expected
            assert select_backend(DEFAULT_SPARSE_THRESHOLD - 1) \
                == BACKEND_DENSE

    def test_env_forces_mode(self, monkeypatch):
        monkeypatch.setenv(backend.ENV_BACKEND, "dense")
        assert select_backend(10_000) == BACKEND_DENSE
        monkeypatch.setenv(backend.ENV_BACKEND, "sparse")
        expected = BACKEND_SPARSE if sparse_available() else BACKEND_DENSE
        assert select_backend(2) == expected

    def test_invalid_env_mode_raises(self, monkeypatch):
        monkeypatch.setenv(backend.ENV_BACKEND, "quantum")
        with pytest.raises(AnalysisError, match="REPRO_BACKEND"):
            select_backend(10)

    def test_invalid_explicit_mode_raises(self):
        with pytest.raises(AnalysisError, match="backend mode"):
            select_backend(10, mode="quantum")

    def test_threshold_env(self, monkeypatch):
        monkeypatch.setenv(backend.ENV_THRESHOLD, "5")
        with backend_override(BACKEND_AUTO):
            expected = (BACKEND_SPARSE if sparse_available()
                        else BACKEND_DENSE)
            assert select_backend(5) == expected
            assert select_backend(4) == BACKEND_DENSE

    def test_invalid_threshold_raises(self, monkeypatch):
        monkeypatch.setenv(backend.ENV_THRESHOLD, "many")
        with pytest.raises(AnalysisError, match="REPRO_SPARSE_THRESHOLD"):
            backend.sparse_threshold()

    def test_override_restores_prior(self, monkeypatch):
        monkeypatch.setenv(backend.ENV_BACKEND, "dense")
        with backend_override(BACKEND_SPARSE):
            assert backend.backend_mode() == BACKEND_SPARSE
        assert backend.backend_mode() == BACKEND_DENSE
        with pytest.raises(AnalysisError):
            with backend_override("quantum"):
                pass  # pragma: no cover

    def test_override_none_removes_var(self, monkeypatch):
        monkeypatch.setenv(backend.ENV_BACKEND, "sparse")
        with backend_override(None):
            assert backend.backend_mode() == BACKEND_AUTO
        assert backend.backend_mode() == BACKEND_SPARSE


# ---------------------------------------------------------------------------
# factorization parity
# ---------------------------------------------------------------------------
class TestFactorizationParity:
    @needs_scipy
    def test_solutions_match_dense(self, rng):
        a, b = _random_system(rng, 40)
        np.testing.assert_allclose(SparseLU(a).solve(b),
                                   DenseLU(a).solve(b),
                                   rtol=1e-9, atol=1e-12)

    @needs_scipy
    def test_accepts_scipy_sparse_input(self, rng):
        from scipy import sparse
        a, b = _random_system(rng, 25)
        np.testing.assert_allclose(SparseLU(sparse.csr_array(a)).solve(b),
                                   DenseLU(a).solve(b),
                                   rtol=1e-9, atol=1e-12)

    @needs_scipy
    def test_singular_raises_at_construction(self):
        singular = np.zeros((6, 6))
        singular[0, 0] = 1.0
        for cls in (DenseLU, SparseLU):
            with pytest.raises(SingularMatrixError):
                cls(singular)

    @needs_scipy
    def test_nonfinite_raises(self):
        bad = np.eye(4)
        bad[2, 2] = np.nan
        for cls in (DenseLU, SparseLU):
            with pytest.raises(SingularMatrixError):
                cls(bad)

    @needs_scipy
    def test_rhs_dimension_mismatch(self, rng):
        a, _ = _random_system(rng, 8)
        for cls in (DenseLU, SparseLU):
            with pytest.raises(AnalysisError, match="leading dimension"):
                cls(a).solve(np.ones(9))

    @needs_scipy
    def test_facade_routes_by_mode(self, rng):
        a, b = _random_system(rng, 12)
        with backend_override(BACKEND_SPARSE):
            f = Factorization(a)
        assert f.backend == BACKEND_SPARSE
        with backend_override(BACKEND_DENSE):
            g = Factorization(a)
        assert g.backend == BACKEND_DENSE
        np.testing.assert_allclose(f.solve(b), g.solve(b),
                                   rtol=1e-9, atol=1e-12)

    @needs_scipy
    def test_solve_columns_parity_and_singular_mask(self, rng):
        n, k = 15, 4
        mats = np.stack([_random_system(rng, n)[0] for _ in range(k)])
        rhs = rng.normal(size=(n, k))
        mats[2, :, :] = 0.0  # one singular member
        xd, sd = solve_columns(mats, rhs, BACKEND_DENSE)
        xs, ss = solve_columns(mats, rhs, BACKEND_SPARSE)
        np.testing.assert_array_equal(sd, [False, False, True, False])
        np.testing.assert_array_equal(sd, ss)
        np.testing.assert_allclose(xd, xs, rtol=1e-9, atol=1e-12)
        assert not xd[:, 2].any()


# ---------------------------------------------------------------------------
# verdict parity on full fault dictionaries
# ---------------------------------------------------------------------------
def _screen_verdicts(macro, mode, config_name, faults):
    configuration = [c for c in macro.test_configurations(box_mode="fast")
                     if c.name == config_name][0]
    vector = list(configuration.parameters.seeds)
    with backend_override(mode):
        executor = execution.TestExecutor(macro.circuit, configuration,
                                          macro.options)
        reports = executor.screen_faults(faults, vector)
    return [(bool(r.detected), float(r.value)) for r in reports]


@needs_scipy
class TestVerdictParity:
    def test_iv_converter_full_dictionary(self, iv_macro):
        """All 55 IV-converter faults: forced sparse == dense."""
        faults = list(iv_macro.fault_dictionary())
        assert len(faults) == 55
        dense = _screen_verdicts(iv_macro, BACKEND_DENSE, "dc-output",
                                 faults)
        sparse = _screen_verdicts(iv_macro, BACKEND_SPARSE, "dc-output",
                                  faults)
        assert [d[0] for d in dense] == [s[0] for s in sparse]
        np.testing.assert_allclose([d[1] for d in dense],
                                   [s[1] for s in sparse],
                                   rtol=1e-6, atol=1e-9)

    def test_active_filter_dictionary(self):
        """Zoo ladder above the auto threshold: sparse == dense."""
        macro = ActiveFilterMacro(n_sections=60, fault_top_n=12)
        faults = list(macro.fault_dictionary())
        dense = _screen_verdicts(macro, BACKEND_DENSE, "dc-out", faults)
        sparse = _screen_verdicts(macro, BACKEND_SPARSE, "dc-out", faults)
        assert [d[0] for d in dense] == [s[0] for s in sparse]
        np.testing.assert_allclose([d[1] for d in dense],
                                   [s[1] for s in sparse],
                                   rtol=1e-6, atol=1e-9)
        assert any(d[0] for d in dense)  # the screen finds real faults

    def test_two_stage_opamp_dictionary(self):
        """Nonlinear zoo op-amp (Newton confirms): sparse == dense."""
        macro = TwoStageOpampMacro(fault_top_n=10)
        faults = list(macro.fault_dictionary())
        dense = _screen_verdicts(macro, BACKEND_DENSE, "dc-transfer",
                                 faults)
        sparse = _screen_verdicts(macro, BACKEND_SPARSE, "dc-transfer",
                                  faults)
        assert [d[0] for d in dense] == [s[0] for s in sparse]


# ---------------------------------------------------------------------------
# scipy-absent degrade
# ---------------------------------------------------------------------------
class TestScipyAbsentFallback:
    def _absent(self, monkeypatch):
        monkeypatch.setattr(backend, "_scipy_splu", None)
        monkeypatch.setattr(backend, "_scipy_sparse", None)

    def test_sparse_request_degrades_to_dense(self, monkeypatch):
        self._absent(monkeypatch)
        assert not sparse_available()
        assert select_backend(10_000, mode=BACKEND_SPARSE) == BACKEND_DENSE
        with backend_override(BACKEND_SPARSE):
            f = Factorization(np.eye(5))
        assert f.backend == BACKEND_DENSE

    def test_sparse_lu_raises_without_scipy(self, monkeypatch):
        self._absent(monkeypatch)
        with pytest.raises(AnalysisError, match="unavailable"):
            SparseLU(np.eye(3))

    def test_static_operator_degrades(self, monkeypatch):
        self._absent(monkeypatch)
        a = np.eye(4)
        assert backend.static_operator(a, BACKEND_SPARSE) is a

    def test_solve_columns_degrades(self, monkeypatch, rng):
        a, rhs = _random_system(rng, 9, k=2)
        mats = np.stack([a, a + np.eye(9)])
        expect, _ = solve_columns(mats, rhs, BACKEND_DENSE)
        self._absent(monkeypatch)
        got, singular = solve_columns(mats, rhs, BACKEND_SPARSE)
        assert not singular.any()
        np.testing.assert_allclose(got, expect, rtol=1e-9, atol=1e-12)

    def test_screen_verdicts_unchanged(self, monkeypatch, iv_macro):
        """Forced-sparse screening without scipy == plain dense."""
        faults = list(iv_macro.fault_dictionary())[:12]
        expect = _screen_verdicts(iv_macro, BACKEND_DENSE, "dc-output",
                                  faults)
        self._absent(monkeypatch)
        got = _screen_verdicts(iv_macro, BACKEND_SPARSE, "dc-output",
                               faults)
        assert [g[0] for g in got] == [e[0] for e in expect]
        np.testing.assert_allclose([g[1] for g in got],
                                   [e[1] for e in expect],
                                   rtol=1e-9, atol=1e-12)


# ---------------------------------------------------------------------------
# engine accounting
# ---------------------------------------------------------------------------
@needs_scipy
def test_engine_counts_sparse_factorizations():
    macro = ActiveFilterMacro(n_sections=60, fault_top_n=6)
    faults = list(macro.fault_dictionary())
    configuration = [c for c in macro.test_configurations(box_mode="fast")
                     if c.name == "dc-out"][0]
    vector = list(configuration.parameters.seeds)
    with backend_override(BACKEND_SPARSE):
        executor = execution.TestExecutor(macro.circuit, configuration, macro.options)
        executor.screen_faults(faults, vector)
    stats = executor.engine.stats
    assert stats.factorizations > 0
    assert stats.sparse_factorizations == stats.factorizations
    with backend_override(BACKEND_DENSE):
        executor = execution.TestExecutor(macro.circuit, configuration, macro.options)
        executor.screen_faults(faults, vector)
    assert executor.engine.stats.sparse_factorizations == 0
