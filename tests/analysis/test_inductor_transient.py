"""Inductor-specific transient behaviour (RL, RLC)."""

import numpy as np
import pytest

from repro.analysis import SimOptions, operating_point, transient
from repro.circuit import CircuitBuilder
from repro.waveforms import SineWave, StepWave


class TestRLC:
    def test_underdamped_ringing_frequency(self):
        """Series RLC step response rings at the damped natural
        frequency."""
        r, l, c = 10.0, 1e-3, 1e-9
        circuit = (CircuitBuilder("rlc")
                   .voltage_source("VIN", "in", "0",
                                   StepWave(base=0.0, elev=1.0,
                                            t_step=0.0, slew_rate=1e12))
                   .resistor("R1", "in", "a", r)
                   .inductor("L1", "a", "b", l)
                   .capacitor("C1", "b", "0", c)
                   .build())
        w0 = 1.0 / np.sqrt(l * c)
        f0 = w0 / (2 * np.pi)
        result = transient(circuit, t_stop=8 / f0, dt=1 / (100 * f0))
        v = result.v("b")
        # count zero crossings of (v - 1) over the window
        centred = v - 1.0
        crossings = np.sum(np.diff(np.sign(centred)) != 0)
        expected = 2 * 8  # two crossings per ring period, ~8 periods
        assert crossings == pytest.approx(expected, abs=2)

    def test_energy_decays_to_dc(self):
        # zeta = (R/2)*sqrt(C/L) = 0.1, envelope tau = 2L/R = 10 us:
        # 150 us = 15 envelope time constants kills the ringing.
        r, l, c = 200.0, 1e-3, 1e-9
        circuit = (CircuitBuilder("rlc2")
                   .voltage_source("VIN", "in", "0",
                                   StepWave(base=0.0, elev=1.0,
                                            t_step=0.0, slew_rate=1e12))
                   .resistor("R1", "in", "a", r)
                   .inductor("L1", "a", "b", l)
                   .capacitor("C1", "b", "0", c)
                   .build())
        result = transient(circuit, t_stop=150e-6, dt=50e-9)
        assert result.v("b")[-1] == pytest.approx(1.0, abs=1e-3)
        assert result.i("L1")[-1] == pytest.approx(0.0, abs=1e-6)

    def test_be_and_trap_agree_when_damped(self):
        r, l, c = 2000.0, 1e-3, 1e-9
        def run(method):
            circuit = (CircuitBuilder("rlc3")
                       .voltage_source("VIN", "in", "0",
                                       StepWave(base=0.0, elev=1.0,
                                                t_step=0.0,
                                                slew_rate=1e12))
                       .resistor("R1", "in", "a", r)
                       .inductor("L1", "a", "b", l)
                       .capacitor("C1", "b", "0", c)
                       .build())
            return transient(circuit, t_stop=20e-6, dt=20e-9,
                             options=SimOptions(transient_method=method))
        v_trap = run("trap").v("b")
        v_be = run("be").v("b")
        assert np.max(np.abs(v_trap - v_be)) < 0.02


class TestInductorSine:
    """The RL sine tests subtract the last-period mean: an inductor
    switched on into a sine develops the classic decaying DC offset
    (tau = L/R), which is physics, not an integration artifact."""

    @staticmethod
    def _run(freq=10e3, l=1e-3, r=1.0, spp=256):
        circuit = (CircuitBuilder("l")
                   .voltage_source("VIN", "in", "0",
                                   SineWave(offset=0.0, amplitude=1.0,
                                            freq=freq))
                   .resistor("R1", "in", "a", r)
                   .inductor("L1", "a", "0", l)
                   .build())
        result = transient(circuit, t_stop=8 / freq, dt=1 / (spp * freq))
        i_last = result.i("L1")[-spp:]
        v_last = result.v("in")[-spp:]
        return v_last - v_last.mean(), i_last - i_last.mean()

    def test_current_lags_voltage(self):
        spp = 256
        v_ac, i_ac = self._run(spp=spp)
        # Fundamental-bin phase difference: V leads I by atan(wL/R),
        # which is 89.1 degrees for wL = 62.8 ohm against R = 1 ohm.
        v_bin = np.fft.rfft(v_ac)[1]
        i_bin = np.fft.rfft(i_ac)[1]
        phase_deg = np.angle(v_bin / i_bin, deg=True)
        assert phase_deg == pytest.approx(89.1, abs=3.0)

    def test_amplitude_matches_impedance(self):
        freq, l, r = 10e3, 1e-3, 1.0
        _, i_ac = self._run(freq=freq, l=l, r=r)
        i_peak = 0.5 * (np.max(i_ac) - np.min(i_ac))
        expected = 1.0 / np.hypot(r, 2 * np.pi * freq * l)
        assert i_peak == pytest.approx(expected, rel=0.02)
