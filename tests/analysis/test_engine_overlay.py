"""Unit tests for overlay stamping, source patching and the engine layer."""

import numpy as np
import pytest

from repro.analysis import (
    CompiledCircuit,
    SimulationEngine,
    WarmStart,
    operating_point,
)
from repro.circuit import CircuitBuilder
from repro.circuit.elements import Resistor
from repro.errors import (
    AnalysisError,
    FaultModelError,
    OverlayValidationError,
)
from repro.faults import BridgingFault, PinholeFault
from repro.testgen.procedures import DCProcedure, Probe
from repro.waveforms import DCWave, StepWave


@pytest.fixture()
def compiled_divider(divider_circuit):
    return CompiledCircuit(divider_circuit)


class TestOverlayPushPop:
    def test_overlay_matches_real_resistor(self, divider_circuit,
                                           compiled_divider):
        with compiled_divider.overlay([("mid", "0", 1e-4)]):
            overlaid = operating_point(compiled_divider)
        reference = operating_point(divider_circuit.with_element(
            Resistor("RX", "mid", "0", 1e4)))
        assert overlaid.v("mid") == pytest.approx(reference.v("mid"),
                                                  rel=1e-9)

    def test_pop_restores_matrix_bit_exactly(self, compiled_divider):
        before = compiled_divider._g_static.copy()
        compiled_divider.push_overlay([("mid", "0", 3.7e-5),
                                       ("in", "mid", 1.1e-2)])
        assert not np.array_equal(before, compiled_divider._g_static)
        compiled_divider.pop_overlay()
        assert np.array_equal(before, compiled_divider._g_static)

    def test_nested_overlays_restore_in_lifo_order(self, compiled_divider):
        before = compiled_divider._g_static.copy()
        with compiled_divider.overlay([("in", "mid", 1e-3)]):
            mid = compiled_divider._g_static.copy()
            with compiled_divider.overlay([("mid", "0", 1e-3)]):
                assert compiled_divider.overlay_depth == 2
            assert np.array_equal(mid, compiled_divider._g_static)
        assert np.array_equal(before, compiled_divider._g_static)
        assert compiled_divider.overlay_depth == 0

    def test_overlay_pops_on_exception(self, compiled_divider):
        before = compiled_divider._g_static.copy()
        with pytest.raises(RuntimeError):
            with compiled_divider.overlay([("mid", "0", 1e-3)]):
                raise RuntimeError("boom")
        assert np.array_equal(before, compiled_divider._g_static)

    def test_pop_empty_stack_raises(self, compiled_divider):
        with pytest.raises(AnalysisError):
            compiled_divider.pop_overlay()

    def test_unknown_node_raises(self, compiled_divider):
        with pytest.raises(AnalysisError):
            compiled_divider.push_overlay([("nope", "0", 1e-3)])

    def test_same_node_stamp_raises(self, compiled_divider):
        with pytest.raises(AnalysisError):
            compiled_divider.push_overlay([("mid", "mid", 1e-3)])

    def test_ground_aliases_resolve(self, compiled_divider):
        token = compiled_divider.push_overlay([("mid", "gnd", 1e-3)])
        assert token == 1
        compiled_divider.pop_overlay()


class TestSourcePatching:
    def test_patched_source_changes_solution(self, compiled_divider):
        nominal = operating_point(compiled_divider).v("mid")
        with compiled_divider.patched_source("VIN", DCWave(2.0)):
            patched = operating_point(compiled_divider).v("mid")
        restored = operating_point(compiled_divider).v("mid")
        assert patched == pytest.approx(1.0, rel=1e-6)
        assert restored == pytest.approx(nominal, rel=1e-12)

    def test_patched_source_nests(self, compiled_divider):
        with compiled_divider.patched_source("VIN", DCWave(2.0)):
            with compiled_divider.patched_source("VIN", StepWave(
                    base=1.0, elev=1.0, t_step=1e-9, slew_rate=1e9)):
                op = operating_point(compiled_divider)
                assert op.v("mid") == pytest.approx(0.5, rel=1e-6)
            op = operating_point(compiled_divider)
            assert op.v("mid") == pytest.approx(1.0, rel=1e-6)

    def test_patch_and_clear(self, compiled_divider):
        compiled_divider.patch_source("VIN", DCWave(3.0))
        assert operating_point(compiled_divider).v("mid") == \
            pytest.approx(1.5, rel=1e-6)
        compiled_divider.clear_source_patches()
        assert operating_point(compiled_divider).v("mid") == \
            pytest.approx(2.5, rel=1e-6)

    def test_unknown_source_raises(self, compiled_divider):
        with pytest.raises(AnalysisError):
            compiled_divider.patch_source("R1", DCWave(1.0))
        with pytest.raises(AnalysisError):
            with compiled_divider.patched_source("NOPE", DCWave(1.0)):
                pass

    def test_has_source(self, compiled_divider):
        assert compiled_divider.has_source("VIN")
        assert compiled_divider.has_source("vin")
        assert not compiled_divider.has_source("R1")


class TestWarmStart:
    def test_warm_start_converges_in_few_iterations(self, iv_macro):
        compiled = CompiledCircuit(iv_macro.circuit)
        cold = operating_point(compiled, iv_macro.options)
        warm = operating_point(compiled, iv_macro.options, x0=cold.x)
        assert warm.iterations <= 3
        assert warm.v("vout") == pytest.approx(cold.v("vout"), abs=1e-6)

    def test_pathological_warm_start_still_converges(self, iv_macro):
        compiled = CompiledCircuit(iv_macro.circuit)
        cold = operating_point(compiled, iv_macro.options)
        bad = np.full(compiled.size, 40.0)
        recovered = operating_point(compiled, iv_macro.options, x0=bad)
        assert recovered.v("vout") == pytest.approx(cold.v("vout"),
                                                    abs=1e-4)


class TestStampDelta:
    def test_bridge_stamp_is_inverse_impact(self, iv_macro):
        compiled = CompiledCircuit(iv_macro.circuit)
        fault = BridgingFault(node_a="n1", node_b="n2", impact=10e3)
        (stamp,) = fault.stamp_delta(compiled)
        assert stamp.conductance == pytest.approx(1e-4)
        assert {stamp.node_a, stamp.node_b} == {"n1", "n2"}

    def test_bridge_stamp_unknown_node_raises(self, compiled_divider):
        fault = BridgingFault(node_a="mid", node_b="zz", impact=10e3)
        with pytest.raises(FaultModelError):
            fault.stamp_delta(compiled_divider)

    def test_pinhole_base_has_split_but_no_shunt(self, iv_macro):
        fault = PinholeFault(device="M6", impact=2e3)
        base = fault.overlay_base(iv_macro.circuit)
        assert base.has_node(fault.split_node)
        assert fault.element_name not in base
        assert "M6_PHD" in base and "M6_PHS" in base
        assert "M6" not in base

    def test_pinhole_stamp_requires_its_base(self, iv_macro):
        fault = PinholeFault(device="M6", impact=2e3)
        nominal = CompiledCircuit(iv_macro.circuit)
        with pytest.raises(FaultModelError):
            fault.stamp_delta(nominal)
        compiled_base = CompiledCircuit(fault.overlay_base(iv_macro.circuit))
        (stamp,) = fault.stamp_delta(compiled_base)
        assert stamp.conductance == pytest.approx(1.0 / 2e3)
        assert stamp.node_b == fault.split_node

    def test_base_keys_share_and_separate(self):
        b1 = BridgingFault(node_a="a", node_b="b", impact=1e3)
        b2 = BridgingFault(node_a="a", node_b="c", impact=2e4)
        p1 = PinholeFault(device="M1", impact=2e3)
        p1b = PinholeFault(device="M1", impact=9e3)  # other impact
        p2 = PinholeFault(device="M2", impact=2e3)
        assert b1.overlay_base_key == b2.overlay_base_key == "nominal"
        assert p1.overlay_base_key == p1b.overlay_base_key
        assert p1.overlay_base_key != p2.overlay_base_key


class TestSimulationEngine:
    def test_compile_once_for_all_bridges(self, iv_macro):
        engine = SimulationEngine(iv_macro.circuit, iv_macro.options)
        proc = DCProcedure("IIN", "base", (Probe("v", "vout"),))
        params = {"base": 20e-6}
        faults = [BridgingFault(node_a="n1", node_b="n2", impact=10e3),
                  BridgingFault(node_a="vref", node_b="0", impact=10e3),
                  BridgingFault(node_a="vout", node_b="iin", impact=10e3)]
        for fault in faults:
            engine.simulate_fault(proc, params, fault)
        assert engine.stats.compilations == 1  # the shared nominal base
        assert engine.stats.overlay_simulations == len(faults)
        assert engine.stats.legacy_simulations == 0

    def test_pinhole_base_compiled_once_per_site(self, iv_macro):
        engine = SimulationEngine(iv_macro.circuit, iv_macro.options)
        proc = DCProcedure("IIN", "base", (Probe("v", "vout"),))
        params = {"base": 20e-6}
        for impact in (2e3, 8e3, 32e3):
            engine.simulate_fault(
                proc, params, PinholeFault(device="M6", impact=impact))
        assert engine.stats.compilations == 1  # one site skeleton
        engine.simulate_fault(
            proc, params, PinholeFault(device="M2", impact=2e3))
        assert engine.stats.compilations == 2

    def test_warm_start_hits_accumulate(self, iv_macro):
        engine = SimulationEngine(iv_macro.circuit, iv_macro.options)
        proc = DCProcedure("IIN", "base", (Probe("v", "vout"),))
        fault = BridgingFault(node_a="n1", node_b="n2", impact=10e3)
        engine.simulate_fault(proc, {"base": 20e-6}, fault)
        engine.simulate_fault(proc, {"base": 21e-6}, fault)
        assert engine.stats.warm_start_hits >= 1

    def test_validate_overlay_passes_on_correct_models(self, iv_macro):
        engine = SimulationEngine(iv_macro.circuit, iv_macro.options,
                                  validate_overlay=True)
        proc = DCProcedure("IIN", "base", (Probe("v", "vout"),))
        engine.simulate_fault(
            proc, {"base": 20e-6},
            BridgingFault(node_a="n2", node_b="n3", impact=10e3))
        assert engine.stats.validations == 1

    def test_validate_overlay_catches_broken_stamp(self, iv_macro):
        class BrokenBridge(BridgingFault):
            def stamp_delta(self, compiled):
                (stamp,) = super().stamp_delta(compiled)
                return (type(stamp)(stamp.node_a, stamp.node_b,
                                    stamp.conductance * 100.0),)

        engine = SimulationEngine(iv_macro.circuit, iv_macro.options,
                                  validate_overlay=True)
        proc = DCProcedure("IIN", "base", (Probe("i", "VDD"),))
        fault = BrokenBridge(node_a="vout", node_b="0", impact=50e3)
        with pytest.raises(OverlayValidationError):
            engine.simulate_fault(proc, {"base": 20e-6}, fault)

    def test_base_lru_keeps_nominal(self, iv_macro):
        engine = SimulationEngine(iv_macro.circuit, iv_macro.options,
                                  max_bases=2)
        proc = DCProcedure("IIN", "base", (Probe("v", "vout"),))
        params = {"base": 20e-6}
        engine.simulate_fault(
            proc, params, BridgingFault(node_a="n1", node_b="n2",
                                        impact=10e3))
        for device in ("M1", "M2", "M5"):
            engine.simulate_fault(
                proc, params, PinholeFault(device=device, impact=2e3))
        assert "nominal" in engine._bases
        assert len(engine._bases) <= 2
        assert engine.stats.base_evictions >= 2

    def test_warm_slot_identity(self, iv_macro):
        engine = SimulationEngine(iv_macro.circuit, iv_macro.options)
        slot = engine.warm_slot("nominal", "x")
        assert isinstance(slot, WarmStart)
        assert engine.warm_slot("nominal", "x") is slot
        assert engine.warm_slot("nominal", "y") is not slot

    def test_overlay_leaves_nominal_clean(self, iv_macro):
        engine = SimulationEngine(iv_macro.circuit, iv_macro.options)
        proc = DCProcedure("IIN", "base", (Probe("v", "vout"),))
        params = {"base": 20e-6}
        before = engine.simulate_nominal(proc, params)
        engine.simulate_fault(
            proc, params, BridgingFault(node_a="vout", node_b="0",
                                        impact=1e3))
        after = engine.simulate_nominal(proc, params)
        assert np.allclose(before, after, rtol=1e-9, atol=1e-9)
        assert engine.nominal.overlay_depth == 0
