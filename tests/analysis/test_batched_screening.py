"""Batched SMW screening: factorization, certificates and the
screen-then-confirm contract.

The batched layer may only ever *accelerate* fault evaluation — a
screened verdict must be the verdict the per-fault overlay Newton path
would have produced.  These tests pin that contract on the full
55-fault IV-converter dictionary, plus the fallback/degradation edges
(budget exhaustion, non-screening procedures, validate_overlay mode).
"""

import numpy as np
import pytest

from repro.analysis import (
    BatchedOverlaySolver,
    Factorization,
    SimulationEngine,
)
from repro.analysis.mna import CompiledCircuit
from repro.analysis.newton import robust_solve
from repro.errors import AnalysisError, SingularMatrixError
from repro.faults import BridgingFault, exhaustive_fault_dictionary
from repro.testgen.execution import TestExecutor as Executor
from repro.testgen.procedures import DCProcedure, Probe, StepProcedure
from repro.waveforms import DCWave

#: Cross-path agreement tolerances (same rationale as the equivalence
#: suite: both paths converge independently to the Newton tolerances).
RTOL = 5e-3
ATOL = 5e-6


@pytest.fixture(scope="module")
def iv_faults(iv_macro):
    """The paper's exhaustive 55-fault dictionary (module-scoped)."""
    return exhaustive_fault_dictionary(iv_macro.circuit,
                                       nodes=iv_macro.standard_nodes)


@pytest.fixture(scope="module")
def dc_config(iv_macro):
    """The DC-output configuration (fast boxes, module-scoped)."""
    return [c for c in iv_macro.test_configurations(box_mode="fast")
            if c.name == "dc-output"][0]


class TestFactorization:
    def test_solve_matches_dense_solve(self, rng):
        a = rng.normal(size=(12, 12)) + 12.0 * np.eye(12)
        f = Factorization(a)
        b = rng.normal(size=12)
        assert np.allclose(f.solve(b), np.linalg.solve(a, b))

    def test_matrix_rhs(self, rng):
        a = rng.normal(size=(9, 9)) + 9.0 * np.eye(9)
        f = Factorization(a)
        rhs = rng.normal(size=(9, 5))
        assert np.allclose(f.solve(rhs), np.linalg.solve(a, rhs))

    def test_input_matrix_is_copied(self, rng):
        a = rng.normal(size=(6, 6)) + 6.0 * np.eye(6)
        f = Factorization(a)
        b = rng.normal(size=6)
        expected = f.solve(b).copy()
        a[:] = 0.0  # mutating the caller's matrix must not matter
        assert np.allclose(f.solve(b), expected)

    def test_singular_matrix_raises(self):
        with pytest.raises(SingularMatrixError):
            Factorization(np.zeros((4, 4)))

    def test_shape_validation(self):
        with pytest.raises(AnalysisError):
            Factorization(np.zeros((3, 4)))
        f = Factorization(np.eye(3))
        with pytest.raises(AnalysisError):
            f.solve(np.zeros(5))

    def test_compiled_circuit_factorize(self, divider_circuit):
        from repro.analysis.options import DEFAULT_OPTIONS

        compiled = CompiledCircuit(divider_circuit)
        b = compiled.source_vector(None)
        x, _, _ = robust_solve(compiled, np.zeros(compiled.size), b,
                               DEFAULT_OPTIONS)
        factorization = compiled.factorize(x, b, gmin=1e-12)
        g, rhs = compiled.linearize(x, b, 1e-12)
        assert np.allclose(factorization.solve(rhs.copy()),
                           np.linalg.solve(g, rhs))


class TestSolverContract:
    def test_solver_rejects_overlaid_base(self, iv_macro):
        compiled = CompiledCircuit(iv_macro.circuit)
        b = compiled.source_vector(None)
        x0, _, _ = robust_solve(compiled, np.zeros(compiled.size), b,
                                iv_macro.options)
        with compiled.overlay([("n1", "n2", 1e-4)]):
            with pytest.raises(AnalysisError):
                BatchedOverlaySolver(compiled, x0, b, iv_macro.options)

    def test_warm_length_mismatch_rejected(self, iv_macro):
        compiled = CompiledCircuit(iv_macro.circuit)
        with compiled.patched_source("IIN", DCWave(20e-6)):
            b = compiled.source_vector(None)
            x0, _, _ = robust_solve(compiled, np.zeros(compiled.size), b,
                                    iv_macro.options)
            solver = BatchedOverlaySolver(compiled, x0, b, iv_macro.options)
            with pytest.raises(AnalysisError):
                solver.screen([[("n1", "n2", 1e-4)]], warm=[None, None])

    def test_certified_solutions_satisfy_newton(self, iv_macro, iv_faults):
        """Every converged screen solution is a true overlay-Newton
        fixed point (the certificate the verdict guarantee rests on)."""
        from repro.analysis.newton import newton_solve

        compiled = CompiledCircuit(iv_macro.circuit)
        with compiled.patched_source("IIN", DCWave(20e-6)):
            b = compiled.source_vector(None)
            x0, _, _ = robust_solve(compiled, np.zeros(compiled.size), b,
                                    iv_macro.options)
            solver = BatchedOverlaySolver(compiled, x0, b, iv_macro.options)
            bridges = list(iv_faults.of_type("bridge"))
            stamp_sets = [[(s.node_a, s.node_b, s.conductance)
                           for s in f.stamp_delta(compiled)]
                          for f in bridges]
            solutions = solver.screen(stamp_sets)
            checked = 0
            for fault, stamps, solution in zip(bridges, stamp_sets,
                                               solutions):
                if not solution.converged:
                    continue
                with compiled.overlay(stamps):
                    outcome = newton_solve(compiled, solution.x, b,
                                           iv_macro.options)
                assert outcome.converged, fault.fault_id
                assert np.max(np.abs(outcome.x - solution.x)) < 1e-3, \
                    fault.fault_id
                checked += 1
            # From a cold start only the near-linear part of the family
            # converges without the robust fallback — that part must
            # still be non-trivial, and every certificate must hold.
            assert checked >= 10


class TestEngineScreening:
    def test_raw_equivalence_full_dictionary(self, iv_macro, iv_faults):
        """Screened raws match per-fault overlay raws on all 55 faults."""
        procedure = DCProcedure("IIN", "base",
                                (Probe("v", "vout"), Probe("i", "VDD")))
        params = {"base": 20e-6}
        screener = SimulationEngine(iv_macro.circuit, iv_macro.options)
        reference = SimulationEngine(iv_macro.circuit, iv_macro.options)
        outcomes = screener.screen_faults(procedure, params, list(iv_faults))
        mismatches = []
        for fault, outcome in zip(iv_faults, outcomes):
            try:
                expected = reference.simulate_fault(procedure, params, fault)
            except AnalysisError:
                expected = None
            if (expected is None) != (outcome.raw is None):
                mismatches.append((fault.fault_id, outcome.served))
            elif expected is not None and not np.allclose(
                    outcome.raw, expected, rtol=RTOL, atol=ATOL):
                mismatches.append((fault.fault_id, outcome.served,
                                   outcome.raw, expected))
        assert not mismatches, f"screen != per-fault for: {mismatches}"
        stats = screener.stats
        assert (stats.screened_simulations + stats.screen_newton_confirms
                + stats.screen_fallbacks) == len(iv_faults)
        assert stats.factorizations >= 1

    def test_one_factorization_per_base_stimulus_pair(self, iv_macro,
                                                      iv_faults):
        procedure = DCProcedure("IIN", "base", (Probe("v", "vout"),))
        engine = SimulationEngine(iv_macro.circuit, iv_macro.options)
        bridges = list(iv_faults.of_type("bridge"))
        engine.screen_faults(procedure, {"base": 20e-6}, bridges)
        assert engine.stats.factorizations == 1  # one base, one stimulus
        engine.screen_faults(procedure, {"base": 20e-6}, bridges)
        assert engine.stats.factorizations == 1  # cached
        engine.screen_faults(procedure, {"base": 22e-6}, bridges)
        assert engine.stats.factorizations == 2  # new stimulus

    def test_budget_exhaustion_falls_back(self, iv_macro, iv_faults):
        """Starved batched budgets degrade to fallbacks, not to wrong
        answers."""
        procedure = DCProcedure("IIN", "base", (Probe("v", "vout"),))
        params = {"base": 20e-6}
        engine = SimulationEngine(iv_macro.circuit, iv_macro.options)
        bridges = list(iv_faults.of_type("bridge"))[:8]
        base = engine.nominal
        solver = engine._screen_solver("nominal", base, procedure, params)
        solver.max_chord_iter = 0
        solver.max_newton_iter = 1
        outcomes = engine.screen_faults(procedure, params, bridges)
        assert engine.stats.screen_fallbacks > 0
        reference = SimulationEngine(iv_macro.circuit, iv_macro.options)
        for fault, outcome in zip(bridges, outcomes):
            expected = reference.simulate_fault(procedure, params, fault)
            assert np.allclose(outcome.raw, expected, rtol=RTOL, atol=ATOL)

    def test_non_screening_procedure_served_per_fault(self, iv_macro,
                                                      iv_faults):
        procedure = StepProcedure(
            "IIN", "vout", base_param="base", elev_param="elev",
            mode="max", sample_rate=20e6, test_time=0.2e-6)
        engine = SimulationEngine(iv_macro.circuit, iv_macro.options)
        faults = list(iv_faults.of_type("pinhole"))[:2]
        outcomes = engine.screen_faults(
            procedure, {"base": 5e-6, "elev": 20e-6}, faults)
        assert [o.served for o in outcomes] == ["overlay", "overlay"]
        assert engine.stats.screened_simulations == 0
        assert engine.stats.factorizations == 0

    def test_validate_overlay_disables_screening(self, iv_macro):
        engine = SimulationEngine(iv_macro.circuit, iv_macro.options,
                                  validate_overlay=True)
        procedure = DCProcedure("IIN", "base", (Probe("v", "vout"),))
        fault = BridgingFault(node_a="n1", node_b="n2", impact=10e3)
        assert not engine.screen_supported(procedure)
        outcomes = engine.screen_faults(procedure, {"base": 20e-6}, [fault])
        assert outcomes[0].served == "overlay"
        assert engine.stats.validations >= 1  # per-fault path validated


class TestScreenThenConfirmContract:
    """The ISSUE's acceptance contract: batched SMW detection verdicts
    match per-fault overlay Newton on the full 55-fault dictionary."""

    def test_verdicts_match_full_dictionary(self, iv_macro, iv_faults,
                                            dc_config):
        screener = Executor(iv_macro.circuit, dc_config, iv_macro.options)
        reference = Executor(iv_macro.circuit, dc_config, iv_macro.options)
        faults = list(iv_faults)
        for vector in ([20e-6], [22e-6]):  # cold sweep, then steady state
            screened = screener.screen_faults(faults, vector)
            expected = [reference.sensitivity(f, vector) for f in faults]
            wrong = [
                (f.fault_id, s.value, e.value)
                for f, s, e in zip(faults, screened, expected)
                if s.detected != e.detected]
            assert not wrong, f"verdict mismatches at {vector}: {wrong}"
            worst = max(abs(s.value - e.value)
                        for s, e in zip(screened, expected))
            assert worst < 0.05, f"sensitivity drift {worst} at {vector}"
        assert screener.stats.screened_simulations > 0
        assert len(faults) == 55

    def test_margin_confirm_reruns_borderline_verdicts(self, iv_macro,
                                                       iv_faults,
                                                       dc_config):
        executor = Executor(iv_macro.circuit, dc_config, iv_macro.options)
        faults = list(iv_faults.of_type("bridge"))[:6]
        executor.screen_faults(faults, [20e-6])  # warm everything up
        before = executor.stats.screen_margin_confirms
        reports = executor.screen_faults(faults, [20e-6],
                                         margin=float("inf"))
        # An infinite margin declares every screened verdict borderline,
        # so each one must have been re-run on the per-fault path.
        assert executor.stats.screen_margin_confirms > before
        reference = Executor(iv_macro.circuit, dc_config, iv_macro.options)
        for fault, report in zip(faults, reports):
            expected = reference.sensitivity(fault, [20e-6])
            assert report.value == pytest.approx(expected.value,
                                                 rel=1e-3, abs=1e-6)

    def test_non_screening_configuration_delegates(self, rc_macro):
        """Configurations outside the screening protocol still answer
        through screen_faults (via per-fault sensitivity)."""
        configs = {c.name: c for c in rc_macro.test_configurations()}
        step_config = configs["step-mean"]
        executor = Executor(rc_macro.circuit, step_config, rc_macro.options)
        faults = list(rc_macro.fault_dictionary())[:2]
        vector = step_config.parameters.seeds
        reports = executor.screen_faults(faults, vector)
        for fault, report in zip(faults, reports):
            expected = executor.sensitivity(fault, vector)
            assert report.value == pytest.approx(expected.value,
                                                 rel=1e-6, abs=1e-9)
        assert executor.stats.screened_simulations == 0

    def test_unsimulatable_fault_is_maximally_deviant(self, iv_macro,
                                                      dc_config,
                                                      monkeypatch):
        """A fault the robust fallback cannot solve must screen as a
        guaranteed detection, exactly like the per-fault path."""
        executor = Executor(iv_macro.circuit, dc_config, iv_macro.options)
        fault = BridgingFault(node_a="vdd", node_b="0", impact=10e3)

        def refuse(*args, **kwargs):
            raise AnalysisError("forced failure")

        # Starve the batched stages so the fault falls back to the
        # (refusing) per-fault path.
        monkeypatch.setattr(executor.engine, "simulate_fault", refuse)
        base = executor.engine.nominal
        params = dc_config.parameters.to_dict([20e-6])
        solver = executor.engine._screen_solver(
            "nominal", base, dc_config.procedure, params)
        solver.max_chord_iter = 0
        solver.max_newton_iter = 0
        (report,) = executor.screen_faults([fault], [20e-6])
        assert report.detected
        assert report.value < -1.0
