"""Transient analysis tests against analytic first/second-order responses."""

import numpy as np
import pytest

from repro.analysis import SimOptions, transient, operating_point
from repro.circuit import CircuitBuilder, NMOS_DEFAULT
from repro.waveforms import PulseWave, SineWave, StepWave


def rc_circuit(r=1e3, c=1e-6, wave=None):
    wave = wave if wave is not None else StepWave(
        base=0.0, elev=1.0, t_step=0.0, slew_rate=1e12)
    return (CircuitBuilder("rc")
            .voltage_source("VIN", "in", "0", wave)
            .resistor("R1", "in", "out", r)
            .capacitor("C1", "out", "0", c)
            .build())


class TestRCStep:
    def test_exponential_charge(self):
        tr = transient(rc_circuit(), t_stop=5e-3, dt=5e-6)
        tau = 1e-3
        expected = 1.0 - np.exp(-tr.t / tau)
        np.testing.assert_allclose(tr.v("out"), expected, atol=5e-3)

    def test_backward_euler_also_converges(self):
        options = SimOptions(transient_method="be")
        tr = transient(rc_circuit(), t_stop=5e-3, dt=2e-6, options=options)
        tau = 1e-3
        v_tau = np.interp(tau, tr.t, tr.v("out"))
        assert v_tau == pytest.approx(1 - np.exp(-1), abs=2e-3)

    def test_trap_more_accurate_than_be_on_smooth_input(self):
        """2nd-order trap beats 1st-order BE once start-up has decayed.

        (At a hard discontinuity trap rings while BE damps, so the
        comparison uses a smooth sine and its analytic steady state.)
        """
        r, c = 1e3, 1e-6
        freq = 500.0
        wave = SineWave(offset=0.0, amplitude=1.0, freq=freq)
        h = 1j * 2 * np.pi * freq * r * c
        gain = 1.0 / (1.0 + h)

        def steady(t):
            return np.abs(gain) * np.sin(2 * np.pi * freq * t
                                         + np.angle(gain))

        errors = {}
        for method in ("trap", "be"):
            tr = transient(rc_circuit(wave=wave), t_stop=10e-3, dt=50e-6,
                           options=SimOptions(transient_method=method))
            last_period = slice(-int(1 / freq / 50e-6), None)
            errors[method] = np.max(np.abs(
                tr.v("out")[last_period] - steady(tr.t[last_period])))
        assert errors["trap"] < errors["be"]

    def test_initial_condition_from_op(self):
        # base level 1 V: the transient must start at the settled value.
        wave = StepWave(base=1.0, elev=1.0, t_step=1e-3, slew_rate=1e12)
        tr = transient(rc_circuit(wave=wave), t_stop=2e-3, dt=10e-6)
        assert tr.v("out")[0] == pytest.approx(1.0, abs=1e-5)

    def test_time_grid(self):
        tr = transient(rc_circuit(), t_stop=1e-3, dt=1e-5)
        assert len(tr.t) == 101
        assert tr.dt == pytest.approx(1e-5)
        assert tr.t[0] == 0.0
        assert tr.t[-1] == pytest.approx(1e-3)

    def test_rejects_bad_grid(self):
        with pytest.raises(ValueError):
            transient(rc_circuit(), t_stop=0.0, dt=1e-6)
        with pytest.raises(ValueError):
            transient(rc_circuit(), t_stop=1e-3, dt=-1e-6)


class TestRLStep:
    def test_inductor_current_rise(self):
        # V -> R -> L to ground: i(t) = V/R (1 - exp(-t R/L))
        c = (CircuitBuilder("rl")
             .voltage_source("VIN", "in", "0",
                             StepWave(base=0.0, elev=1.0, t_step=0.0,
                                      slew_rate=1e12))
             .resistor("R1", "in", "x", 1e3)
             .inductor("L1", "x", "0", 1e-3)
             .build())
        tr = transient(c, t_stop=5e-6, dt=5e-9)
        tau = 1e-3 / 1e3
        expected = 1e-3 * (1.0 - np.exp(-tr.t / tau))
        np.testing.assert_allclose(tr.i("L1"), expected, atol=2e-5)


class TestSine:
    def test_amplitude_attenuation_at_corner(self):
        # RC low-pass driven at its corner frequency: |H| = 1/sqrt(2).
        fc = 1.0 / (2 * np.pi * 1e3 * 1e-6)
        wave = SineWave(offset=0.0, amplitude=1.0, freq=fc)
        tr = transient(rc_circuit(wave=wave), t_stop=8 / fc, dt=1 / (200 * fc))
        # analyze the last 2 periods
        n = int(2 * 200)
        peak = 0.5 * (np.max(tr.v("out")[-n:]) - np.min(tr.v("out")[-n:]))
        assert peak == pytest.approx(1 / np.sqrt(2), rel=0.02)

    def test_pulse_waveform_reaches_levels(self):
        wave = PulseWave(v1=0.0, v2=2.0, td=0.0, tr=1e-6, tf=1e-6,
                         pw=40e-6, per=100e-6)
        tr = transient(rc_circuit(c=1e-9, wave=wave), t_stop=100e-6, dt=1e-7)
        assert np.max(tr.v("out")) == pytest.approx(2.0, abs=0.05)
        assert np.min(tr.v("out")[len(tr) // 2:]) == pytest.approx(
            0.0, abs=0.05)


class TestNonlinearTransient:
    def test_mos_follower_tracks_slow_ramp(self):
        c = (CircuitBuilder("sf")
             .voltage_source("VDD", "vdd", "0", 5.0)
             .voltage_source("VG", "g", "0",
                             StepWave(base=2.0, elev=1.0, t_step=1e-6,
                                      slew_rate=2e6))
             .mosfet("M1", "vdd", "g", "out", "0", NMOS_DEFAULT,
                     "100u", "2u")
             .resistor("RS", "out", "0", 10e3)
             .build())
        tr = transient(c, t_stop=5e-6, dt=10e-9)
        # Follower: out tracks gate minus vgs; the step is 1 V, so the
        # output must rise by roughly 1 V too (body effect reduces a bit).
        rise = tr.v("out")[-1] - tr.v("out")[0]
        assert 0.7 < rise < 1.05

    def test_newton_iterations_reported(self):
        tr = transient(rc_circuit(), t_stop=1e-4, dt=1e-6)
        assert tr.newton_iterations >= len(tr.t) - 1

    def test_precomputed_op_reused(self):
        circuit = rc_circuit()
        op = operating_point(circuit)
        tr = transient(circuit, t_stop=1e-4, dt=1e-6, x0=op)
        assert tr.v("out")[0] == pytest.approx(op.v("out"), abs=1e-9)


class TestHardTransients:
    def test_faulted_macro_near_clipping_converges(self):
        """Regression: the n3-vdd 75 kOhm bridge at full sine drive needs
        deep sub-stepping (dt/64) around the clipping corner."""
        from repro.faults import BridgingFault
        from repro.macros import IVConverterMacro

        macro = IVConverterMacro()
        fault = BridgingFault(node_a="n3", node_b="vdd", impact=75e3)
        circuit = fault.apply(macro.circuit)
        freq = 1e3
        wave = SineWave(offset=40e-6, amplitude=18e-6, freq=freq)
        circuit = circuit.replace_element(
            type(circuit.element("IIN"))("IIN", "0", "iin", wave))
        result = transient(circuit, t_stop=4 / freq, dt=1 / (64 * freq))
        assert np.all(np.isfinite(result.v("vout")))


class TestResultContainer:
    def test_branch_current_waveform(self):
        tr = transient(rc_circuit(), t_stop=1e-3, dt=1e-5)
        i_vin = tr.i("VIN")
        assert len(i_vin) == len(tr.t)
        # at t=0+ the cap is empty: current ~ -1V/1k (out of the source)
        assert i_vin[1] == pytest.approx(-1e-3, rel=0.1)

    def test_ground_waveform_is_zero(self):
        tr = transient(rc_circuit(), t_stop=1e-4, dt=1e-6)
        assert np.all(tr.v("0") == 0.0)

    def test_unknown_node_raises(self):
        from repro.errors import AnalysisError
        tr = transient(rc_circuit(), t_stop=1e-4, dt=1e-6)
        with pytest.raises(AnalysisError):
            tr.v("zz")
