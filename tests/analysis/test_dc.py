"""DC analysis tests against hand-solvable circuits."""

import numpy as np
import pytest

from repro.analysis import dc_sweep, operating_point, SimOptions
from repro.circuit import CircuitBuilder, NMOS_DEFAULT, PMOS_DEFAULT
from repro.errors import AnalysisError, ConvergenceError


class TestLinearDC:
    def test_divider(self, divider_circuit):
        op = operating_point(divider_circuit)
        assert op.v("mid") == pytest.approx(2.5, abs=1e-6)

    def test_source_current_sign(self, divider_circuit):
        # 5V across 20k: 0.25 mA flows out of the + terminal, so the
        # branch current (defined + -> - through the source) is -0.25 mA.
        op = operating_point(divider_circuit)
        assert op.i("VIN") == pytest.approx(-2.5e-4, rel=1e-6)

    def test_current_source_injection(self):
        c = (CircuitBuilder("cs")
             .current_source("I1", "0", "x", 1e-3)
             .resistor("R1", "x", "0", 1e3)
             .build())
        op = operating_point(c)
        assert op.v("x") == pytest.approx(1.0, rel=1e-6)

    def test_superposition(self):
        c = (CircuitBuilder("sp")
             .voltage_source("V1", "a", "0", 2.0)
             .current_source("I1", "0", "b", 1e-3)
             .resistor("R1", "a", "b", 1e3)
             .resistor("R2", "b", "0", 1e3)
             .build())
        op = operating_point(c)
        # v_b = (2/1k + 1m) / (1/1k + 1/1k) = 1.5
        assert op.v("b") == pytest.approx(1.5, rel=1e-6)

    def test_vcvs_gain(self):
        c = (CircuitBuilder("e")
             .voltage_source("V1", "in", "0", 1.0)
             .vcvs("E1", "out", "0", "in", "0", 10.0)
             .resistor("RL", "out", "0", 1e3)
             .build())
        op = operating_point(c)
        assert op.v("out") == pytest.approx(10.0, rel=1e-6)

    def test_vccs_transconductance(self):
        c = (CircuitBuilder("g")
             .voltage_source("V1", "in", "0", 2.0)
             .vccs("G1", "0", "out", "in", "0", 1e-3)
             .resistor("RL", "out", "0", 1e3)
             .build())
        op = operating_point(c)
        # 2 mA into 1k
        assert op.v("out") == pytest.approx(2.0, rel=1e-6)

    def test_inductor_is_dc_short(self):
        c = (CircuitBuilder("l")
             .voltage_source("V1", "a", "0", 1.0)
             .inductor("L1", "a", "b", 1e-6)
             .resistor("R1", "b", "0", 1e3)
             .build())
        op = operating_point(c)
        assert op.v("b") == pytest.approx(1.0, rel=1e-6)
        assert op.i("L1") == pytest.approx(1e-3, rel=1e-6)

    def test_capacitor_is_dc_open(self):
        c = (CircuitBuilder("c")
             .voltage_source("V1", "a", "0", 1.0)
             .resistor("R1", "a", "b", 1e3)
             .capacitor("C1", "b", "0", 1e-9)
             .resistor("R2", "b", "0", 1e6)
             .build())
        op = operating_point(c)
        # divider 1k/1M, cap irrelevant at DC
        assert op.v("b") == pytest.approx(1e6 / (1e6 + 1e3), rel=1e-6)


class TestNonlinearDC:
    def test_diode_forward_drop(self):
        c = (CircuitBuilder("d")
             .voltage_source("V1", "a", "0", 5.0)
             .resistor("R1", "a", "k", 1e3)
             .diode("D1", "k", "0")
             .build())
        op = operating_point(c)
        vd = op.v("k")
        assert 0.5 < vd < 0.8
        # KCL: diode current equals resistor current.
        i_r = (5.0 - vd) / 1e3
        i_d = 1e-14 * (np.exp(vd / 0.02585) - 1.0)
        assert i_d == pytest.approx(i_r, rel=1e-3)

    def test_nmos_saturation_current(self):
        c = (CircuitBuilder("m")
             .voltage_source("VDD", "vdd", "0", 5.0)
             .voltage_source("VG", "g", "0", 1.5)
             .resistor("RD", "vdd", "d", 1e4)
             .mosfet("M1", "d", "g", "0", "0", NMOS_DEFAULT, "20u", "2u")
             .build())
        op = operating_point(c)
        vd = op.v("d")
        beta = NMOS_DEFAULT.kp * 10
        i_model = 0.5 * beta * 0.7**2 * (1 + NMOS_DEFAULT.lam * vd)
        i_circuit = (5.0 - vd) / 1e4
        assert i_model == pytest.approx(i_circuit, rel=1e-6)

    def test_pmos_diode_connected(self):
        c = (CircuitBuilder("p")
             .voltage_source("VDD", "vdd", "0", 5.0)
             .resistor("RB", "nb", "0", 4e4)
             .mosfet("M1", "nb", "nb", "vdd", "vdd", PMOS_DEFAULT,
                     "20u", "2u")
             .build())
        op = operating_point(c)
        assert 2.5 < op.v("nb") < 4.5

    def test_cmos_inverter_transfer(self):
        def inverter_out(vin):
            c = (CircuitBuilder("inv")
                 .voltage_source("VDD", "vdd", "0", 5.0)
                 .voltage_source("VIN", "in", "0", vin)
                 .mosfet("MN", "out", "in", "0", "0", NMOS_DEFAULT,
                         "10u", "2u")
                 .mosfet("MP", "out", "in", "vdd", "vdd", PMOS_DEFAULT,
                         "25u", "2u")
                 .resistor("RL", "out", "0", 1e9)
                 .build())
            return operating_point(c).v("out")

        assert inverter_out(0.0) > 4.9
        assert inverter_out(5.0) < 0.1
        mid = inverter_out(2.4)
        assert 0.3 < mid < 4.7  # transition region


class TestSweep:
    def test_sweep_voltage_source(self, divider_circuit):
        values = np.linspace(0.0, 5.0, 6)
        sweep = dc_sweep(divider_circuit, "VIN", values)
        assert len(sweep) == 6
        np.testing.assert_allclose(sweep.v("mid"), values / 2, atol=1e-6)

    def test_sweep_current_source(self):
        c = (CircuitBuilder("cs")
             .current_source("I1", "0", "x", 0.0)
             .resistor("R1", "x", "0", 2e3)
             .build())
        sweep = dc_sweep(c, "I1", np.array([0.0, 1e-3, 2e-3]))
        np.testing.assert_allclose(sweep.v("x"), [0.0, 2.0, 4.0], atol=1e-6)

    def test_sweep_rejects_non_source(self, divider_circuit):
        with pytest.raises(AnalysisError):
            dc_sweep(divider_circuit, "R1", np.array([1.0]))

    def test_sweep_does_not_mutate(self, divider_circuit):
        dc_sweep(divider_circuit, "VIN", np.array([1.0, 2.0]))
        assert divider_circuit.element("VIN").dc_value == 5.0


class TestRobustness:
    def test_op_accepts_warm_start(self, divider_circuit):
        op1 = operating_point(divider_circuit)
        op2 = operating_point(divider_circuit, x0=op1.x)
        assert op2.iterations <= op1.iterations

    def test_unknown_node_raises(self, divider_circuit):
        op = operating_point(divider_circuit)
        with pytest.raises(AnalysisError):
            op.v("nonexistent")

    def test_unknown_branch_raises(self, divider_circuit):
        op = operating_point(divider_circuit)
        with pytest.raises(AnalysisError):
            op.i("R1")

    def test_ground_voltage_is_zero(self, divider_circuit):
        op = operating_point(divider_circuit)
        assert op.v("0") == 0.0
        assert op.v("gnd") == 0.0

    def test_tight_options(self, divider_circuit):
        options = SimOptions(reltol=1e-9, vntol=1e-9)
        op = operating_point(divider_circuit, options)
        assert op.v("mid") == pytest.approx(2.5, abs=1e-6)
