"""Tests for analysis result containers (beyond their use in analyses)."""

import numpy as np
import pytest

from repro.analysis import dc_sweep, operating_point, ac_analysis
from repro.circuit import CircuitBuilder
from repro.errors import AnalysisError


class TestOperatingPointContainer:
    def test_branch_current_case_insensitive(self, divider_circuit):
        op = operating_point(divider_circuit)
        assert op.i("vin") == op.i("VIN")

    def test_x_vector_matches_named_voltages(self, divider_circuit):
        op = operating_point(divider_circuit)
        assert op.x[1] == pytest.approx(op.v("mid"))

    def test_strategy_recorded(self, divider_circuit):
        assert operating_point(divider_circuit).strategy in (
            "direct", "damped", "gmin", "source", "ptran")


class TestSweepContainer:
    def test_len_and_vectors(self, divider_circuit):
        sweep = dc_sweep(divider_circuit, "VIN", np.array([1.0, 2.0]))
        assert len(sweep) == 2
        assert sweep.v("mid").shape == (2,)
        assert sweep.i("VIN").shape == (2,)

    def test_sweep_name(self, divider_circuit):
        sweep = dc_sweep(divider_circuit, "VIN", np.array([1.0]))
        assert sweep.sweep_name == "VIN"


class TestACContainer:
    @pytest.fixture()
    def ac_result(self):
        circuit = (CircuitBuilder("rc")
                   .voltage_source("VIN", "in", "0", 1.0)
                   .resistor("R1", "in", "out", 1e3)
                   .capacitor("C1", "out", "0", 1e-6)
                   .build())
        return ac_analysis(circuit, "VIN",
                           np.array([10.0, 159.155, 10e3]))

    def test_complex_phasors(self, ac_result):
        assert ac_result.v("out").dtype == complex

    def test_ground_phasor_zero(self, ac_result):
        np.testing.assert_array_equal(ac_result.v("0"),
                                      np.zeros(3, dtype=complex))

    def test_mag_db_monotone_rolloff(self, ac_result):
        mags = ac_result.mag_db("out")
        assert mags[0] > mags[1] > mags[2]

    def test_phase_deg_range(self, ac_result):
        phases = ac_result.phase_deg("out")
        assert np.all(phases <= 0.0)
        assert np.all(phases >= -90.1)

    def test_unknown_node_raises(self, ac_result):
        with pytest.raises(AnalysisError):
            ac_result.v("nothing")
