"""AC analysis and MNA compilation tests."""

import numpy as np
import pytest

from repro.analysis import (
    CompiledCircuit,
    ac_analysis,
    operating_point,
)
from repro.circuit import CircuitBuilder, NMOS_DEFAULT
from repro.errors import AnalysisError, SingularMatrixError


def rc_lowpass():
    return (CircuitBuilder("rc")
            .voltage_source("VIN", "in", "0", 1.0)
            .resistor("R1", "in", "out", 1e3)
            .capacitor("C1", "out", "0", 1e-6)
            .build())


class TestAC:
    def test_corner_frequency_magnitude(self):
        fc = 1.0 / (2 * np.pi * 1e3 * 1e-6)
        ac = ac_analysis(rc_lowpass(), "VIN", np.array([fc]))
        assert abs(ac.v("out")[0]) == pytest.approx(1 / np.sqrt(2), rel=1e-4)

    def test_phase_at_corner(self):
        fc = 1.0 / (2 * np.pi * 1e3 * 1e-6)
        ac = ac_analysis(rc_lowpass(), "VIN", np.array([fc]))
        assert ac.phase_deg("out")[0] == pytest.approx(-45.0, abs=0.1)

    def test_rolloff_20db_per_decade(self):
        fc = 1.0 / (2 * np.pi * 1e3 * 1e-6)
        ac = ac_analysis(rc_lowpass(), "VIN",
                         np.array([100 * fc, 1000 * fc]))
        drop = ac.mag_db("out")[0] - ac.mag_db("out")[1]
        assert drop == pytest.approx(20.0, abs=0.1)

    def test_rl_highpass(self):
        c = (CircuitBuilder("rl")
             .voltage_source("VIN", "in", "0", 1.0)
             .resistor("R1", "in", "out", 1e3)
             .inductor("L1", "out", "0", 1e-3)
             .build())
        fc = 1e3 / (2 * np.pi * 1e-3)  # R/(2 pi L)
        ac = ac_analysis(c, "VIN", np.array([fc]))
        assert abs(ac.v("out")[0]) == pytest.approx(1 / np.sqrt(2), rel=1e-4)

    def test_current_source_stimulus(self):
        c = (CircuitBuilder("ic")
             .current_source("I1", "0", "x", 0.0)
             .resistor("R1", "x", "0", 1e3)
             .build())
        ac = ac_analysis(c, "I1", np.array([1e3]))
        assert abs(ac.v("x")[0]) == pytest.approx(1e3, rel=1e-6)

    def test_mos_common_source_gain(self):
        c = (CircuitBuilder("cs")
             .voltage_source("VDD", "vdd", "0", 5.0)
             .voltage_source("VG", "g", "0", 1.5)
             .resistor("RD", "vdd", "d", 1e4)
             .mosfet("M1", "d", "g", "0", "0", NMOS_DEFAULT, "20u", "2u")
             .build())
        op = operating_point(c)
        ac = ac_analysis(c, "VG", np.array([100.0]), op=op)
        beta = NMOS_DEFAULT.kp * 10
        vds = op.v("d")
        gm = beta * 0.7 * (1 + NMOS_DEFAULT.lam * vds)
        gds = 0.5 * beta * 0.7**2 * NMOS_DEFAULT.lam
        expected = gm / (1e-4 + gds)  # gm * (RD || ro)
        assert abs(ac.v("d")[0]) == pytest.approx(expected, rel=0.01)

    def test_rejects_non_positive_frequency(self):
        with pytest.raises(AnalysisError):
            ac_analysis(rc_lowpass(), "VIN", np.array([0.0]))

    def test_rejects_non_source(self):
        with pytest.raises(AnalysisError):
            ac_analysis(rc_lowpass(), "R1", np.array([1e3]))


class TestCompiledCircuit:
    def test_node_and_branch_indexing(self, divider_circuit):
        compiled = CompiledCircuit(divider_circuit)
        assert compiled.n_nodes == 2
        assert compiled.size == 3  # 2 nodes + VIN branch
        assert "VIN" in compiled.branch_index

    def test_ground_slot_trimmed(self, divider_circuit):
        compiled = CompiledCircuit(divider_circuit)
        b = compiled.source_vector(None)
        g, rhs = compiled.linearize(np.zeros(compiled.size), b, 1e-12)
        assert g.shape == (3, 3)
        assert rhs.shape == (3,)

    def test_mosfet_bank_compiled(self):
        c = (CircuitBuilder("m")
             .voltage_source("VDD", "vdd", "0", 5.0)
             .mosfet("M1", "vdd", "vdd", "0", "0", NMOS_DEFAULT,
                     "10u", "2u")
             .build())
        compiled = CompiledCircuit(c)
        assert compiled.n_mosfets == 1
        assert compiled.n_caps == 2  # cgs + cgd of the MOSFET

    def test_singular_circuit_raises(self):
        # current source into a node with no DC path at gmin=0 would be
        # singular; with a 0-gmin linearize call we expect the error.
        c = (CircuitBuilder("s")
             .current_source("I1", "0", "x", 1e-3)
             .capacitor("C1", "x", "0", 1e-9)
             .resistor("RREF", "y", "0", 1.0)
             .voltage_source("V1", "y", "0", 1.0)
             .build(validate=False))
        compiled = CompiledCircuit(c)
        b = compiled.source_vector(None)
        g, rhs = compiled.linearize(np.zeros(compiled.size), b, 0.0)
        with pytest.raises(SingularMatrixError):
            compiled.solve_linear(g, rhs)

    def test_small_signal_matrices_shapes(self, divider_circuit):
        compiled = CompiledCircuit(divider_circuit)
        op = operating_point(compiled)
        g, c = compiled.small_signal_matrices(op.x, 1e-12)
        assert g.shape == (3, 3)
        assert c.shape == (3, 3)

    def test_work_buffer_reuse_consistency(self, divider_circuit):
        """Two consecutive linearize calls give identical systems."""
        compiled = CompiledCircuit(divider_circuit)
        b = compiled.source_vector(None)
        x = np.zeros(compiled.size)
        g1, r1 = compiled.linearize(x, b, 1e-12)
        g1c, r1c = g1.copy(), r1.copy()
        g2, r2 = compiled.linearize(x, b, 1e-12)
        np.testing.assert_array_equal(g1c, g2)
        np.testing.assert_array_equal(r1c, r2)
