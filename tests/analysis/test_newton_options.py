"""Newton solver robustness and SimOptions tests."""

import numpy as np
import pytest

from repro.analysis import (
    CompiledCircuit,
    DEFAULT_OPTIONS,
    SimOptions,
    operating_point,
)
from repro.analysis.newton import newton_solve, robust_solve
from repro.circuit import CircuitBuilder, NMOS_DEFAULT, PMOS_DEFAULT
from repro.errors import ConvergenceError


class TestOptions:
    def test_defaults_sane(self):
        assert DEFAULT_OPTIONS.gmin == 1e-12
        assert DEFAULT_OPTIONS.transient_method == "trap"

    def test_rejects_bad_method(self):
        with pytest.raises(ValueError):
            SimOptions(transient_method="euler")

    def test_rejects_tiny_max_iter(self):
        with pytest.raises(ValueError):
            SimOptions(max_iter=1)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            DEFAULT_OPTIONS.gmin = 1.0


class TestNewton:
    def test_linear_circuit_converges_in_two_iterations(self,
                                                        divider_circuit):
        compiled = CompiledCircuit(divider_circuit)
        b = compiled.source_vector(None)
        outcome = newton_solve(compiled, np.zeros(compiled.size), b,
                               DEFAULT_OPTIONS)
        assert outcome.converged
        assert outcome.iterations <= 3

    def test_warm_start_converges_immediately(self, divider_circuit):
        compiled = CompiledCircuit(divider_circuit)
        b = compiled.source_vector(None)
        first = newton_solve(compiled, np.zeros(compiled.size), b,
                             DEFAULT_OPTIONS)
        second = newton_solve(compiled, first.x, b, DEFAULT_OPTIONS)
        assert second.converged
        assert second.iterations <= 2

    def test_robust_solve_reports_strategy(self, divider_circuit):
        compiled = CompiledCircuit(divider_circuit)
        b = compiled.source_vector(None)
        _, _, strategy = robust_solve(compiled, np.zeros(compiled.size), b,
                                      DEFAULT_OPTIONS)
        assert strategy == "direct"

    def test_step_limit_only_affects_nonlinear_nodes(self,
                                                     divider_circuit):
        """Linear circuits converge fast even with a tiny vstep_limit."""
        options = SimOptions(vstep_limit=0.01)
        compiled = CompiledCircuit(divider_circuit)
        b = compiled.source_vector(None)
        outcome = newton_solve(compiled, np.zeros(compiled.size), b, options)
        assert outcome.converged
        assert outcome.iterations <= 3

    def test_step_limit_throttles_nonlinear_nodes(self):
        """A diode circuit with a small vstep_limit needs more iterations."""
        def build():
            return (CircuitBuilder("d")
                    .voltage_source("V1", "a", "0", 5.0)
                    .resistor("R1", "a", "k", 1e3)
                    .diode("D1", "k", "0")
                    .build())
        fast = operating_point(build(), SimOptions(vstep_limit=0.8))
        slow = operating_point(build(), SimOptions(vstep_limit=0.05))
        assert slow.v("k") == pytest.approx(fast.v("k"), abs=1e-5)
        assert slow.iterations > fast.iterations


class TestHardCircuits:
    def test_two_stage_opamp_converges(self, iv_macro):
        """The full 10-MOSFET macro must solve from a cold start."""
        op = operating_point(iv_macro.circuit)
        assert 2.0 < op.v("vref") < 3.0
        assert 0.1 < op.v("vout") < 4.9

    def test_latch_like_circuit_with_gmin_ladder(self):
        """Cross-coupled inverters (bistable): some homotopy must win."""
        b = CircuitBuilder("latch")
        b.voltage_source("VDD", "vdd", "0", 5.0)
        for a, o in (("x", "y"), ("y", "x")):
            b.mosfet(f"MN{a}", o, a, "0", "0", NMOS_DEFAULT, "10u", "2u")
            b.mosfet(f"MP{a}", o, a, "vdd", "vdd", PMOS_DEFAULT,
                     "25u", "2u")
        b.resistor("RX", "x", "0", 1e9)
        b.resistor("RY", "y", "vdd", 1e9)
        op = operating_point(b.build())
        # Any self-consistent solution is fine; nodes must be in-rail.
        assert -0.1 <= op.v("x") <= 5.1
        assert -0.1 <= op.v("y") <= 5.1

    def test_bias_kill_fault_converges_via_breakdown_clamp(self):
        """Regression: a defect that cuts the bias chain leaves driven
        nodes floating; the breakdown clamp must give the circuit a
        finite operating point instead of a convergence failure."""
        from repro.faults import BridgingFault
        from repro.macros import IVConverterMacro
        from repro.circuit import CurrentSource
        from repro.waveforms import DCWave

        macro = IVConverterMacro()
        fault = BridgingFault(node_a="nbias", node_b="0", impact=1e3)
        circuit = fault.apply(macro.circuit).replace_element(
            CurrentSource("IIN", "0", "iin", DCWave(20e-6)))
        op = operating_point(circuit)
        assert np.all(np.isfinite(op.x))
        # The floating island pins at the breakdown clamp.
        assert op.v("iin") <= DEFAULT_OPTIONS.breakdown_voltage * 1.5

    def test_multi_loop_feedback_converges_via_ptran(self):
        """Regression: the n3-vref bridge couples the second stage into
        the reference divider; static Newton cycles, pseudo-transient
        continuation must settle it."""
        from repro.faults import BridgingFault
        from repro.macros import IVConverterMacro

        macro = IVConverterMacro()
        fault = BridgingFault(node_a="n3", node_b="vref", impact=1e3)
        op = operating_point(fault.apply(macro.circuit))
        assert np.all(np.isfinite(op.x))
        assert -1.0 < op.v("vout") < 6.0

    def test_convergence_error_is_reported(self):
        """A pathological circuit raises ConvergenceError, not garbage."""
        # Ideal current source forcing current into a reverse diode can
        # never satisfy KCL at any voltage the solver is allowed to
        # reach; with tiny iteration budgets this must fail cleanly.
        c = (CircuitBuilder("bad")
             .current_source("I1", "0", "x", 1.0)
             .diode("D1", "0", "x")
             .build(validate=False))
        options = SimOptions(max_iter=4, gmin_steps=(1e-3,),
                             source_steps=2)
        with pytest.raises(ConvergenceError):
            operating_point(c, options)
