"""Physics-invariant property tests of the analysis engine.

These check conservation laws and network-theory identities on randomly
generated circuits — the kind of invariant that catches stamping-sign
bugs that point tests miss.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import operating_point, transient
from repro.circuit import (
    CircuitBuilder,
    CurrentSource,
    Resistor,
    VoltageSource,
)
from repro.circuit.netlist import Circuit
from repro.waveforms import SineWave


@st.composite
def random_resistor_network(draw):
    """A random connected resistor network driven by one source."""
    n_nodes = draw(st.integers(2, 6))
    nodes = [f"n{i}" for i in range(n_nodes)]
    elements = [VoltageSource("V1", nodes[0], "0",
                              draw(st.floats(0.5, 10.0)))]
    # Spanning chain guarantees connectivity; extra edges add meshes.
    for i in range(n_nodes - 1):
        r = draw(st.floats(10.0, 1e5))
        elements.append(Resistor(f"RC{i}", nodes[i], nodes[i + 1], r))
    elements.append(Resistor("RG", nodes[-1], "0",
                             draw(st.floats(10.0, 1e5))))
    n_extra = draw(st.integers(0, 4))
    for k in range(n_extra):
        a = draw(st.sampled_from(nodes))
        b = draw(st.sampled_from(nodes + ["0"]))
        if a == b:
            continue
        elements.append(Resistor(f"RX{k}", a, b,
                                 draw(st.floats(10.0, 1e5))))
    return Circuit("random", elements)


class TestKirchhoff:
    @settings(max_examples=40, deadline=None)
    @given(random_resistor_network())
    def test_kcl_at_every_node(self, circuit):
        """Element currents sum to zero at every non-ground node."""
        op = operating_point(circuit)
        for node in circuit.nodes():
            total = 0.0
            for element in circuit.elements_at(node):
                if isinstance(element, Resistor):
                    v1 = op.v(element.n1)
                    v2 = op.v(element.n2)
                    current = (v1 - v2) / element.resistance
                    total += -current if element.n1 == node else current
                elif isinstance(element, VoltageSource):
                    branch = op.i(element.name)
                    total += -branch if element.n1 == node else branch
            assert total == pytest.approx(0.0, abs=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(random_resistor_network())
    def test_passivity(self, circuit):
        """A resistive network never produces voltages beyond the source."""
        op = operating_point(circuit)
        source = circuit.element("V1")
        v_max = max(source.dc_value, 0.0)
        v_min = min(source.dc_value, 0.0)
        for node in circuit.nodes():
            assert v_min - 1e-9 <= op.v(node) <= v_max + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(random_resistor_network(), st.floats(0.1, 5.0))
    def test_linearity_scaling(self, circuit, scale):
        """Scaling the only source scales every node voltage."""
        op1 = operating_point(circuit)
        source = circuit.element("V1")
        scaled = circuit.replace_element(
            VoltageSource("V1", source.n1, source.n2,
                          source.dc_value * scale))
        op2 = operating_point(scaled)
        for node in circuit.nodes():
            assert op2.v(node) == pytest.approx(op1.v(node) * scale,
                                                rel=1e-6, abs=1e-9)


class TestReciprocityAndSuperposition:
    def test_superposition_two_sources(self):
        def build(i1, i2):
            return (CircuitBuilder("sp")
                    .current_source("I1", "0", "a", i1)
                    .current_source("I2", "0", "b", i2)
                    .resistor("R1", "a", "b", 1e3)
                    .resistor("R2", "a", "0", 2e3)
                    .resistor("R3", "b", "0", 3e3)
                    .build())
        va_both = operating_point(build(1e-3, 2e-3)).v("a")
        va_1 = operating_point(build(1e-3, 0.0)).v("a")
        va_2 = operating_point(build(0.0, 2e-3)).v("a")
        assert va_both == pytest.approx(va_1 + va_2, rel=1e-9)

    def test_reciprocity(self):
        """Transfer resistance a->b equals b->a in a reciprocal network."""
        def build(inject_at):
            b = (CircuitBuilder("rec")
                 .resistor("R1", "a", "b", 1e3)
                 .resistor("R2", "a", "0", 2e3)
                 .resistor("R3", "b", "0", 3e3)
                 .resistor("R4", "a", "c", 4e3)
                 .resistor("R5", "c", "b", 5e3))
            b.current_source("I1", "0", inject_at, 1e-3)
            return b.build()
        v_b_from_a = operating_point(build("a")).v("b")
        v_a_from_b = operating_point(build("b")).v("a")
        assert v_b_from_a == pytest.approx(v_a_from_b, rel=1e-9)


class TestEnergyAndCharge:
    def test_capacitor_charge_balance(self):
        """In periodic steady state, average capacitor current is ~0."""
        freq = 10e3
        c = (CircuitBuilder("cb")
             .voltage_source("VIN", "in", "0",
                             SineWave(offset=1.0, amplitude=1.0, freq=freq))
             .resistor("R1", "in", "out", 1e3)
             .capacitor("C1", "out", "0", 10e-9)
             .build())
        spp = 64
        tr = transient(c, t_stop=6 / freq, dt=1 / (spp * freq))
        # cap current = (v_in - v_out)/R; average over last whole period
        i_cap = (tr.v("in") - tr.v("out")) / 1e3
        avg = np.mean(i_cap[-spp:])
        assert abs(avg) < 2e-6

    def test_resistive_power_balance(self):
        """Source power equals dissipated power in a resistive circuit."""
        c = (CircuitBuilder("pb")
             .voltage_source("V1", "a", "0", 10.0)
             .resistor("R1", "a", "b", 1e3)
             .resistor("R2", "b", "0", 4e3)
             .build())
        op = operating_point(c)
        p_source = -op.i("V1") * 10.0
        p_r1 = (10.0 - op.v("b"))**2 / 1e3
        p_r2 = op.v("b")**2 / 4e3
        # rel 1e-7 leaves room for the engine's gmin leakage (~1e-10 W).
        assert p_source == pytest.approx(p_r1 + p_r2, rel=1e-7)
