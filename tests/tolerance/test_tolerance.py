"""Unit tests for the tolerance layer (equipment, process, boxes)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.circuit import Mosfet, Resistor
from repro.errors import ToleranceError
from repro.tolerance import (
    AccuracySpec,
    ConstantBoxFunction,
    CallableBoxFunction,
    DEFAULT_EQUIPMENT,
    DEFAULT_PROCESS,
    EquipmentSpec,
    InterpolatedBoxFunction,
    ProcessVariation,
    Spread,
    ToleranceBox,
    calibrate_box_function,
    grid_points,
)


class TestAccuracy:
    def test_error_bound_gain_offset(self):
        spec = AccuracySpec(offset=1e-3, relative=0.01)
        assert spec.error_bound(0.0) == pytest.approx(1e-3)
        assert spec.error_bound(2.0) == pytest.approx(1e-3 + 0.02)
        assert spec.error_bound(-2.0) == pytest.approx(1e-3 + 0.02)

    def test_rejects_exact_instrument(self):
        with pytest.raises(ToleranceError):
            AccuracySpec(offset=0.0, relative=0.0)

    def test_rejects_negative_terms(self):
        with pytest.raises(ToleranceError):
            AccuracySpec(offset=-1.0, relative=0.0)

    def test_equipment_lookup_with_default(self):
        spec = EquipmentSpec(
            accuracies={"voltage": AccuracySpec(offset=1e-3)},
            default=AccuracySpec(offset=5e-3))
        assert spec.error_bound("voltage", 0.0) == pytest.approx(1e-3)
        assert spec.error_bound("unknown-kind", 0.0) == pytest.approx(5e-3)

    def test_default_equipment_kinds(self):
        for kind in ("voltage", "current", "thd", "voltage_sample"):
            assert DEFAULT_EQUIPMENT.error_bound(kind, 1.0) > 0.0

    def test_equipment_is_picklable(self):
        import pickle
        clone = pickle.loads(pickle.dumps(DEFAULT_EQUIPMENT))
        assert clone.error_bound("voltage", 1.0) == \
            DEFAULT_EQUIPMENT.error_bound("voltage", 1.0)

    def test_rejects_negative_relative_term(self):
        with pytest.raises(ToleranceError):
            AccuracySpec(offset=1e-3, relative=-0.01)

    def test_accuracy_lookup_returns_spec_objects(self):
        volt = AccuracySpec(offset=1e-3)
        spec = EquipmentSpec(accuracies={"voltage": volt})
        assert spec.accuracy("voltage") == volt
        assert spec.accuracy("no-such-kind") == spec.default

    def test_accuracies_mapping_defensively_copied(self):
        """Mutating the source mapping after construction must not
        change the spec (it is pickled into worker processes)."""
        source = {"voltage": AccuracySpec(offset=1e-3)}
        spec = EquipmentSpec(accuracies=source)
        source["voltage"] = AccuracySpec(offset=9.0)
        source["current"] = AccuracySpec(offset=9.0)
        assert spec.error_bound("voltage", 0.0) == pytest.approx(1e-3)
        assert spec.accuracy("current") == spec.default

    def test_error_bound_uses_reading_magnitude(self):
        spec = EquipmentSpec(
            accuracies={"gain_db": AccuracySpec(offset=0.1, relative=0.5)})
        assert spec.error_bound("gain_db", -2.0) == \
            spec.error_bound("gain_db", 2.0)

    def test_default_equipment_covers_gain_db(self):
        assert DEFAULT_EQUIPMENT.error_bound("gain_db", 0.0) == \
            pytest.approx(0.1)


class TestProcessVariation:
    def test_sample_perturbs_resistors(self, divider_circuit, rng):
        variant = DEFAULT_PROCESS.sample(divider_circuit, rng)
        r_nom = divider_circuit.element("R1").resistance
        r_var = variant.element("R1").resistance
        assert r_var != r_nom
        assert abs(r_var / r_nom - 1.0) < 0.25  # 3 sigma clip

    def test_sample_perturbs_mosfets(self, iv_macro, rng):
        variant = DEFAULT_PROCESS.sample(iv_macro.circuit, rng)
        m_nom = iv_macro.circuit.element("M1")
        m_var = variant.element("M1")
        assert isinstance(m_var, Mosfet)
        assert m_var.params.vto != m_nom.params.vto
        assert m_var.params.kp != m_nom.params.kp

    def test_vto_sign_preserved(self, iv_macro, rng):
        for _ in range(5):
            variant = DEFAULT_PROCESS.sample(iv_macro.circuit, rng)
            assert variant.element("M3").params.vto < 0.0  # PMOS
            assert variant.element("M1").params.vto > 0.0  # NMOS

    def test_deterministic_with_seed(self, divider_circuit):
        a = DEFAULT_PROCESS.sample(divider_circuit,
                                   np.random.default_rng(7))
        b = DEFAULT_PROCESS.sample(divider_circuit,
                                   np.random.default_rng(7))
        assert a.element("R1").resistance == b.element("R1").resistance

    def test_global_component_moves_all_resistors_together(self,
                                                           divider_circuit):
        variation = ProcessVariation(
            resistor=Spread(global_sigma=0.1, mismatch_sigma=0.0))
        variant = variation.sample(divider_circuit,
                                   np.random.default_rng(3))
        f1 = variant.element("R1").resistance / 10e3
        f2 = variant.element("R2").resistance / 10e3
        assert f1 == pytest.approx(f2, rel=1e-12)

    def test_mismatch_component_differs_per_element(self, divider_circuit):
        variation = ProcessVariation(
            resistor=Spread(global_sigma=0.0, mismatch_sigma=0.05))
        variant = variation.sample(divider_circuit,
                                   np.random.default_rng(3))
        assert variant.element("R1").resistance != \
            variant.element("R2").resistance

    def test_spread_rejects_negative_sigma(self):
        with pytest.raises(ToleranceError):
            Spread(global_sigma=-0.1)

    def test_original_untouched(self, divider_circuit, rng):
        DEFAULT_PROCESS.sample(divider_circuit, rng)
        assert divider_circuit.element("R1").resistance == 10e3


class TestToleranceBox:
    def test_contains(self):
        box = ToleranceBox(nominal=[1.0, 2.0], half_width=[0.1, 0.2])
        assert box.contains([1.05, 1.9])
        assert not box.contains([1.2, 2.0])

    def test_corners(self):
        box = ToleranceBox(nominal=[1.0], half_width=[0.1])
        assert box.lower[0] == pytest.approx(0.9)
        assert box.upper[0] == pytest.approx(1.1)

    def test_exceedance(self):
        box = ToleranceBox(nominal=[0.0], half_width=[0.5])
        assert box.exceedance([1.0])[0] == pytest.approx(2.0)

    def test_rejects_non_positive_width(self):
        with pytest.raises(ToleranceError):
            ToleranceBox(nominal=[0.0], half_width=[0.0])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ToleranceError):
            ToleranceBox(nominal=[0.0, 1.0], half_width=[0.1])


class TestBoxFunctions:
    def test_constant(self):
        fn = ConstantBoxFunction([0.1, 0.2])
        np.testing.assert_allclose(fn([5.0]), [0.1, 0.2])

    def test_constant_rejects_non_positive(self):
        with pytest.raises(ToleranceError):
            ConstantBoxFunction([0.0])

    def test_callable_validates_output(self):
        fn = CallableBoxFunction(lambda p: [-1.0])
        with pytest.raises(ToleranceError):
            fn([0.0])

    def test_interpolated_exact_at_grid(self):
        grid = np.array([[0.0], [1.0]])
        widths = np.array([[0.1], [0.3]])
        fn = InterpolatedBoxFunction(grid, widths, np.array([[0.0, 1.0]]))
        assert fn([0.0])[0] == pytest.approx(0.1)
        assert fn([1.0])[0] == pytest.approx(0.3)

    def test_interpolated_between_grid(self):
        grid = np.array([[0.0], [1.0]])
        widths = np.array([[0.1], [0.3]])
        fn = InterpolatedBoxFunction(grid, widths, np.array([[0.0, 1.0]]))
        mid = fn([0.5])[0]
        assert 0.1 < mid < 0.3

    def test_interpolated_2d(self):
        grid = grid_points(np.array([[0, 1], [0, 1]]), 3)
        widths = np.ones((9, 1)) * 0.2
        fn = InterpolatedBoxFunction(grid, widths,
                                     np.array([[0, 1], [0, 1]]))
        assert fn([0.3, 0.7])[0] == pytest.approx(0.2)

    def test_interpolated_rejects_mismatched_rows(self):
        with pytest.raises(ToleranceError):
            InterpolatedBoxFunction(np.zeros((2, 1)), np.ones((3, 1)),
                                    np.array([[0.0, 1.0]]))

    @given(st.floats(0.0, 1.0))
    def test_interpolated_within_calibrated_range(self, x):
        """IDW never extrapolates beyond the calibrated value range."""
        grid = np.array([[0.0], [0.5], [1.0]])
        widths = np.array([[0.1], [0.5], [0.2]])
        fn = InterpolatedBoxFunction(grid, widths, np.array([[0.0, 1.0]]))
        value = fn([x])[0]
        assert 0.1 - 1e-12 <= value <= 0.5 + 1e-12

    @given(st.floats(-10.0, 10.0))
    def test_interpolated_clips_outside_bounds(self, x):
        """Queries outside the calibrated parameter bounds still return
        values inside the calibrated range — far queries converge to a
        distance-weighted mean, never to an extrapolated runaway."""
        grid = np.array([[0.0], [0.5], [1.0]])
        widths = np.array([[0.1], [0.5], [0.2]])
        fn = InterpolatedBoxFunction(grid, widths, np.array([[0.0, 1.0]]))
        value = fn([x])[0]
        assert 0.1 - 1e-12 <= value <= 0.5 + 1e-12

    def test_interpolated_exact_hit_returns_copy(self):
        """Mutating a returned width vector must not corrupt the grid."""
        grid = np.array([[0.0], [1.0]])
        widths = np.array([[0.1], [0.3]])
        fn = InterpolatedBoxFunction(grid, widths, np.array([[0.0, 1.0]]))
        out = fn([0.0])
        out[0] = 99.0
        assert fn([0.0])[0] == pytest.approx(0.1)

    def test_interpolated_rejects_wrong_query_dimension(self):
        fn = InterpolatedBoxFunction(np.array([[0.0], [1.0]]),
                                     np.array([[0.1], [0.3]]),
                                     np.array([[0.0, 1.0]]))
        with pytest.raises(ToleranceError):
            fn([0.5, 0.5])

    def test_interpolated_rejects_empty_grid(self):
        with pytest.raises(ToleranceError):
            InterpolatedBoxFunction(np.zeros((0, 1)), np.zeros((0, 1)),
                                    np.array([[0.0, 1.0]]))

    def test_interpolated_rejects_non_positive_widths(self):
        with pytest.raises(ToleranceError):
            InterpolatedBoxFunction(np.array([[0.0], [1.0]]),
                                    np.array([[0.1], [0.0]]),
                                    np.array([[0.0, 1.0]]))

    def test_interpolated_rejects_zero_span_bounds(self):
        with pytest.raises(ToleranceError):
            InterpolatedBoxFunction(np.array([[0.0], [1.0]]),
                                    np.array([[0.1], [0.3]]),
                                    np.array([[1.0, 1.0]]))

    def test_interpolated_1d_widths_promoted(self):
        """A flat half-width vector is accepted as one return value."""
        fn = InterpolatedBoxFunction(np.array([[0.0], [1.0]]),
                                     np.array([0.1, 0.3]),
                                     np.array([[0.0, 1.0]]))
        assert fn([0.0]).shape == (1,)
        assert fn.n_grid_points == 2
        assert "2 points" in repr(fn)


class TestGrid:
    def test_1d(self):
        grid = grid_points(np.array([[0.0, 4.0]]), 5)
        np.testing.assert_allclose(grid.ravel(), [0, 1, 2, 3, 4])

    def test_2d_full_factorial(self):
        grid = grid_points(np.array([[0, 1], [10, 20]]), 3)
        assert grid.shape == (9, 2)
        assert {tuple(g) for g in grid} >= {(0.0, 10.0), (1.0, 20.0),
                                            (0.5, 15.0)}

    def test_rejects_single_point(self):
        with pytest.raises(ToleranceError):
            grid_points(np.array([[0.0, 1.0]]), 1)


class TestCalibration:
    def _evaluate(self, circuit, point):
        """Fake 'simulation': deviation proportional to R1 shift."""
        r = circuit.element("R1").resistance
        return np.array([(r - 10e3) / 10e3 * float(point[0])])

    def test_calibrated_function_positive(self, divider_circuit):
        fn = calibrate_box_function(
            self._evaluate, divider_circuit, DEFAULT_PROCESS,
            np.array([[1.0, 5.0]]), tag="test/div", points_per_axis=3,
            n_samples=8, cache_dir=None)
        assert fn([3.0])[0] > 0.0

    def test_box_grows_with_parameter(self, divider_circuit):
        """Deviation scales with the parameter -> so must the box."""
        fn = calibrate_box_function(
            self._evaluate, divider_circuit, DEFAULT_PROCESS,
            np.array([[1.0, 5.0]]), tag="test/div2", points_per_axis=3,
            n_samples=8, cache_dir=None)
        assert fn([5.0])[0] > fn([1.0])[0]

    def test_cache_roundtrip(self, divider_circuit, tmp_path):
        kwargs = dict(
            evaluate=self._evaluate, nominal_circuit=divider_circuit,
            variation=DEFAULT_PROCESS, bounds=np.array([[1.0, 5.0]]),
            tag="test/cache", points_per_axis=3, n_samples=6,
            cache_dir=tmp_path)
        first = calibrate_box_function(**kwargs)
        cached_files = list(tmp_path.glob("box_*.json"))
        assert len(cached_files) == 1
        second = calibrate_box_function(**kwargs)
        assert second([2.5])[0] == pytest.approx(first([2.5])[0])

    def test_deterministic_given_seed(self, divider_circuit):
        results = [calibrate_box_function(
            self._evaluate, divider_circuit, DEFAULT_PROCESS,
            np.array([[1.0, 5.0]]), tag="test/det", points_per_axis=2,
            n_samples=5, seed=99, cache_dir=None)([2.0])[0]
            for _ in range(2)]
        assert results[0] == results[1]
