"""Statistical equivalence suite: vectorized Monte Carlo vs scalar path.

The vectorized screen serves every (process sample x fault) column from
one factorized nominal system per overlay base; the scalar reference
recompiles and re-solves one sample at a time.  This suite pins the
equivalence contract on the **full 55-fault IV-converter dictionary**:
same seed, same draws, shared boxes — detection verdicts must match
*exactly*, margins to tight tolerance, and the vectorized run must be a
deterministic pure function of its inputs.
"""

import numpy as np
import pytest

from repro.errors import ToleranceError
from repro.tolerance import (
    MonteCarloStats,
    empirical_process_boxes,
    empirical_tolerance_box,
    screen_dictionary_montecarlo,
)

#: Batch geometry of the dictionary-scale comparison: small enough to
#: keep the scalar reference affordable in the tier-1 suite, large
#: enough that every overlay base screens a multi-sample column block.
N_SAMPLES = 8
SEED = 11

#: Margins of unconfirmed columns may differ between the two solvers at
#: solver-tolerance level; huge margins (failed columns score a 1e9
#: deviation) additionally need a relative term.
MARGIN_ATOL = 5e-3
MARGIN_RTOL = 1e-3


@pytest.fixture(scope="module")
def dc_config(iv_macro):
    return [c for c in iv_macro.test_configurations()
            if c.name == "dc-output"][0]


@pytest.fixture(scope="module")
def dictionary(iv_macro):
    return list(iv_macro.fault_dictionary())


@pytest.fixture(scope="module")
def vec_result(iv_macro, dc_config, dictionary):
    """Vectorized screen of the full dictionary."""
    return screen_dictionary_montecarlo(
        iv_macro.circuit, dc_config, dictionary,
        list(dc_config.parameters.seeds), iv_macro.options,
        n_samples=N_SAMPLES, seed=SEED)


@pytest.fixture(scope="module")
def scalar_result(iv_macro, dc_config, dictionary, vec_result):
    """Scalar reference over the same draws, scored in the same boxes."""
    return screen_dictionary_montecarlo(
        iv_macro.circuit, dc_config, dictionary,
        list(dc_config.parameters.seeds), iv_macro.options,
        n_samples=N_SAMPLES, seed=SEED, boxes=vec_result.boxes,
        vectorized=False)


class TestDictionaryEquivalence:
    def test_paths_took_their_intended_routes(self, vec_result,
                                              scalar_result):
        assert vec_result.vectorized
        assert not scalar_result.vectorized
        assert vec_result.stats.factorizations > 0
        assert scalar_result.stats.factorizations == 0
        assert scalar_result.stats.scalar_solves > 0

    def test_detection_verdicts_match_exactly(self, vec_result,
                                              scalar_result):
        """The acceptance contract: zero verdict mismatches over all
        (fault, sample) pairs of the 55-fault dictionary."""
        mismatches = [
            (e_vec.fault_id, s)
            for e_vec, e_sc in zip(vec_result.estimates,
                                   scalar_result.estimates)
            for s in range(N_SAMPLES)
            if bool(e_vec.detected[s]) != bool(e_sc.detected[s])]
        assert mismatches == []

    def test_detection_probabilities_match_exactly(self, vec_result,
                                                   scalar_result):
        for e_vec, e_sc in zip(vec_result.estimates,
                               scalar_result.estimates):
            assert e_vec.detection_probability == e_sc.detection_probability

    def test_margins_match_to_tight_tolerance(self, vec_result,
                                              scalar_result):
        for e_vec, e_sc in zip(vec_result.estimates,
                               scalar_result.estimates):
            np.testing.assert_allclose(
                e_vec.margins, e_sc.margins,
                rtol=MARGIN_RTOL, atol=MARGIN_ATOL,
                err_msg=f"margin drift on {e_vec.fault_id}")

    def test_fault_free_readings_match(self, vec_result, scalar_result):
        """Both paths observe the same manufactured devices."""
        np.testing.assert_array_equal(vec_result.nominal_reading,
                                      scalar_result.nominal_reading)
        np.testing.assert_allclose(vec_result.sample_readings,
                                   scalar_result.sample_readings,
                                   rtol=1e-6, atol=1e-9)

    def test_dictionary_order_and_shapes(self, vec_result, dictionary):
        assert vec_result.fault_ids == tuple(
            f.fault_id for f in dictionary)
        for estimate in vec_result.estimates:
            assert estimate.margins.shape == (N_SAMPLES,)
            assert estimate.detected.shape == (N_SAMPLES,)
            assert 0.0 <= estimate.detection_probability <= 1.0

    def test_vectorized_run_is_deterministic(self, iv_macro, dc_config,
                                             dictionary, vec_result):
        """Same inputs -> bitwise-identical margins and verdicts."""
        again = screen_dictionary_montecarlo(
            iv_macro.circuit, dc_config, dictionary,
            list(dc_config.parameters.seeds), iv_macro.options,
            n_samples=N_SAMPLES, seed=SEED)
        np.testing.assert_array_equal(again.boxes, vec_result.boxes)
        for a, b in zip(again.estimates, vec_result.estimates):
            np.testing.assert_array_equal(a.margins, b.margins)
            np.testing.assert_array_equal(a.detected, b.detected)

    def test_borderline_margins_were_confirmed(self, vec_result):
        """Every surviving |margin| below the confirm threshold belongs
        to a sample that was re-run on the scalar reference."""
        for estimate in vec_result.estimates:
            n_borderline = int(np.sum(np.abs(estimate.margins) < 0.02))
            assert estimate.n_confirmed >= 0
            # Confirmed entries are a subset of the borderline ones
            # (confirmation can move a margin out of the band, never
            # into it unseen).
            assert estimate.n_confirmed <= N_SAMPLES
            if n_borderline:
                assert vec_result.stats.margin_confirms > 0


class TestEmpiricalBoxes:
    def test_helper_matches_screen_derivation(self, iv_macro, dc_config,
                                              dictionary, vec_result):
        boxes = empirical_process_boxes(
            iv_macro.circuit, dc_config,
            list(dc_config.parameters.seeds), iv_macro.options,
            n_samples=N_SAMPLES, seed=SEED)
        np.testing.assert_allclose(boxes, vec_result.boxes,
                                   rtol=1e-9, atol=0.0)

    def test_scalar_helper_close_to_vectorized(self, iv_macro, dc_config,
                                               vec_result):
        boxes = empirical_process_boxes(
            iv_macro.circuit, dc_config,
            list(dc_config.parameters.seeds), iv_macro.options,
            n_samples=N_SAMPLES, seed=SEED, vectorized=False)
        np.testing.assert_allclose(boxes, vec_result.boxes,
                                   rtol=1e-3, atol=1e-9)

    def test_box_object(self, vec_result):
        box = empirical_tolerance_box(vec_result)
        np.testing.assert_array_equal(box.nominal,
                                      vec_result.nominal_reading)
        np.testing.assert_array_equal(box.half_width, vec_result.boxes)


class TestResultApi:
    def test_estimate_lookup(self, vec_result, dictionary):
        first = dictionary[0].fault_id
        assert vec_result.estimate_for(first).fault_id == first
        with pytest.raises(ToleranceError):
            vec_result.estimate_for("bridge:not:there")

    def test_probability_mapping_order(self, vec_result):
        assert tuple(vec_result.detection_probabilities) == \
            vec_result.fault_ids

    def test_stats_merge(self):
        a = MonteCarloStats(factorizations=1, columns_screened=10)
        b = MonteCarloStats(factorizations=2, margin_confirms=3)
        merged = a.merged(b)
        assert merged.factorizations == 3
        assert merged.columns_screened == 10
        assert merged.margin_confirms == 3


class TestValidation:
    def test_rejects_empty_dictionary(self, rc_macro):
        config = rc_macro.test_configurations()[0]
        with pytest.raises(ToleranceError):
            screen_dictionary_montecarlo(
                rc_macro.circuit, config, [],
                list(config.parameters.seeds), rc_macro.options)

    def test_rejects_duplicate_fault_ids(self, rc_macro):
        config = rc_macro.test_configurations()[0]
        fault = list(rc_macro.fault_dictionary())[0]
        with pytest.raises(ToleranceError):
            screen_dictionary_montecarlo(
                rc_macro.circuit, config, [fault, fault],
                list(config.parameters.seeds), rc_macro.options)

    def test_rejects_bad_sample_count(self, rc_macro):
        config = rc_macro.test_configurations()[0]
        faults = list(rc_macro.fault_dictionary())[:1]
        with pytest.raises(ToleranceError):
            screen_dictionary_montecarlo(
                rc_macro.circuit, config, faults,
                list(config.parameters.seeds), rc_macro.options,
                n_samples=0)

    def test_rejects_bad_boxes(self, rc_macro):
        config = rc_macro.test_configurations()[0]
        faults = list(rc_macro.fault_dictionary())[:1]
        with pytest.raises(ToleranceError):
            screen_dictionary_montecarlo(
                rc_macro.circuit, config, faults,
                list(config.parameters.seeds), rc_macro.options,
                n_samples=2, boxes=np.array([1.0, 2.0, 3.0]))
        with pytest.raises(ToleranceError):
            screen_dictionary_montecarlo(
                rc_macro.circuit, config, faults,
                list(config.parameters.seeds), rc_macro.options,
                n_samples=2, boxes=np.array([0.0]))


class TestCoverageModes:
    """The detection_probability coverage mode rides on the MC screen."""

    @pytest.fixture(scope="class")
    def rc_setup(self, rc_macro, rc_bench):
        from repro.testgen.configuration import Test
        config = rc_macro.test_configurations()[0]
        faults = list(rc_macro.fault_dictionary())
        test = Test(rc_bench.configuration(config.name),
                    np.asarray(config.parameters.seeds, float))
        return rc_bench, faults, [test]

    def test_probabilistic_entries_carry_probabilities(self, rc_setup):
        from repro.compaction import evaluate_coverage
        bench, faults, tests = rc_setup
        report = evaluate_coverage(bench, faults, tests,
                                   mode="detection_probability",
                                   n_samples=16, seed=3)
        for entry in report.entries:
            assert 0.0 <= entry.detection_probability <= 1.0
            assert entry.covered == (entry.detection_probability >= 0.9)

    def test_deterministic_entries_have_nan_probability(self, rc_setup):
        from repro.compaction import evaluate_coverage
        bench, faults, tests = rc_setup
        report = evaluate_coverage(bench, faults, tests)
        for entry in report.entries:
            assert np.isnan(entry.detection_probability)

    def test_unknown_mode_rejected(self, rc_setup):
        from repro.compaction import evaluate_coverage
        from repro.errors import TestGenerationError
        bench, faults, tests = rc_setup
        with pytest.raises(TestGenerationError):
            evaluate_coverage(bench, faults, tests, mode="fuzzy")
        with pytest.raises(TestGenerationError):
            evaluate_coverage(bench, faults, tests,
                              mode="detection_probability",
                              detection_threshold=0.0)

    def test_select_covering_tests_probabilistic(self, rc_setup):
        from repro.compaction import evaluate_coverage, select_covering_tests
        bench, faults, tests = rc_setup
        kept = select_covering_tests(bench, faults, tests,
                                     mode="detection_probability",
                                     n_samples=16, seed=3)
        assert set(str(t) for t in kept) <= set(str(t) for t in tests)
        # The kept subset preserves probabilistic coverage.
        full = evaluate_coverage(bench, faults, tests, stop_at_first=False,
                                 mode="detection_probability",
                                 n_samples=16, seed=3)
        compact = evaluate_coverage(bench, faults, list(kept),
                                    stop_at_first=False,
                                    mode="detection_probability",
                                    n_samples=16, seed=3)
        assert compact.n_covered == full.n_covered

    def test_executor_wrapper_roundtrip(self, rc_macro, rc_setup):
        bench, faults, tests = rc_setup
        config_name = tests[0].config_name
        result = bench.detection_probabilities(
            config_name, faults, list(tests[0].values), n_samples=8,
            seed=5)
        direct = screen_dictionary_montecarlo(
            rc_macro.circuit, bench.configuration(config_name), faults,
            list(tests[0].values), rc_macro.options, n_samples=8, seed=5)
        np.testing.assert_array_equal(result.boxes, direct.boxes)
        for a, b in zip(result.estimates, direct.estimates):
            np.testing.assert_array_equal(a.margins, b.margins)
