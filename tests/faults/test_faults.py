"""Unit tests for fault models, dictionaries and injection."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.analysis import operating_point
from repro.circuit import CircuitBuilder, Mosfet, NMOS_DEFAULT, Resistor
from repro.errors import FaultModelError
from repro.faults import (
    BridgingFault,
    FaultDictionary,
    IMPACT_RESISTANCE_MAX,
    IMPACT_RESISTANCE_MIN,
    PinholeFault,
    enumerate_bridging_faults,
    enumerate_pinhole_faults,
    exhaustive_fault_dictionary,
    inject_fault,
)


@pytest.fixture()
def mos_circuit():
    return (CircuitBuilder("m")
            .voltage_source("VDD", "vdd", "0", 5.0)
            .voltage_source("VG", "g", "0", 2.0)
            .resistor("RD", "vdd", "d", 1e4)
            .mosfet("M1", "d", "g", "0", "0", NMOS_DEFAULT, "20u", "2u")
            .build())


class TestBridgingFault:
    def test_identity_order_insensitive(self):
        a = BridgingFault(node_a="x", node_b="y", impact=1e4)
        b = BridgingFault(node_a="y", node_b="x", impact=1e4)
        assert a.fault_id == b.fault_id == "bridge:x:y"

    def test_ground_canonicalized(self):
        f = BridgingFault(node_a="gnd", node_b="x", impact=1e4)
        assert f.fault_id == "bridge:0:x"

    def test_rejects_same_node(self):
        with pytest.raises(FaultModelError):
            BridgingFault(node_a="x", node_b="x", impact=1e4)
        with pytest.raises(FaultModelError):
            BridgingFault(node_a="0", node_b="gnd", impact=1e4)

    def test_apply_adds_resistor(self, divider_circuit):
        f = BridgingFault(node_a="in", node_b="mid", impact=1e4)
        faulty = f.apply(divider_circuit)
        assert len(faulty) == len(divider_circuit) + 1
        bridge = faulty.element(f.element_name)
        assert isinstance(bridge, Resistor)
        assert bridge.resistance == 1e4

    def test_apply_does_not_mutate(self, divider_circuit):
        f = BridgingFault(node_a="in", node_b="mid", impact=1e4)
        f.apply(divider_circuit)
        assert f.element_name not in divider_circuit

    def test_apply_missing_node_raises(self, divider_circuit):
        f = BridgingFault(node_a="in", node_b="zz", impact=1e4)
        with pytest.raises(FaultModelError):
            f.apply(divider_circuit)

    def test_bridge_changes_divider_output(self, divider_circuit):
        f = BridgingFault(node_a="mid", node_b="0", impact=1e3)
        nominal = operating_point(divider_circuit).v("mid")
        faulted = operating_point(f.apply(divider_circuit)).v("mid")
        assert faulted < nominal  # pulled toward ground


class TestPinholeFault:
    def test_apply_splits_device(self, mos_circuit):
        f = PinholeFault(device="M1", impact=2e3)
        faulty = f.apply(mos_circuit)
        assert "M1" not in faulty
        assert "M1_PHD" in faulty
        assert "M1_PHS" in faulty
        assert f.element_name in faulty

    def test_split_geometry(self, mos_circuit):
        f = PinholeFault(device="M1", impact=2e3, position=0.25)
        faulty = f.apply(mos_circuit)
        drain_side = faulty.element("M1_PHD")
        source_side = faulty.element("M1_PHS")
        assert isinstance(drain_side, Mosfet)
        assert drain_side.l == pytest.approx(0.25 * 2e-6)
        assert source_side.l == pytest.approx(0.75 * 2e-6)
        assert drain_side.w == source_side.w == pytest.approx(20e-6)

    def test_split_wiring(self, mos_circuit):
        f = PinholeFault(device="M1", impact=2e3)
        faulty = f.apply(mos_circuit)
        drain_side = faulty.element("M1_PHD")
        source_side = faulty.element("M1_PHS")
        shunt = faulty.element(f.element_name)
        assert drain_side.s == source_side.d == f.split_node
        assert set(shunt.nodes) == {"g", f.split_node}

    def test_apply_missing_device_raises(self, mos_circuit):
        with pytest.raises(FaultModelError):
            PinholeFault(device="M9", impact=2e3).apply(mos_circuit)

    def test_apply_non_mosfet_raises(self, mos_circuit):
        with pytest.raises(FaultModelError):
            PinholeFault(device="RD", impact=2e3).apply(mos_circuit)

    def test_double_injection_raises(self, mos_circuit):
        f = PinholeFault(device="M1", impact=2e3)
        once = f.apply(mos_circuit)
        with pytest.raises(FaultModelError):
            # Split node already exists; PHD/PHS names collide anyway.
            f.apply(once.with_element(
                Mosfet("M1", "d", "g", "0", "0", NMOS_DEFAULT,
                       20e-6, 2e-6)))

    def test_rejects_bad_position(self):
        with pytest.raises(FaultModelError):
            PinholeFault(device="M1", position=0.0)
        with pytest.raises(FaultModelError):
            PinholeFault(device="M1", position=1.0)

    def test_cache_key_distinguishes_position(self):
        """Regression: simulation caches must not conflate pinholes that
        differ only in defect position (same fault_id and impact)."""
        near = PinholeFault(device="M1", impact=2e3, position=0.1)
        far = PinholeFault(device="M1", impact=2e3, position=0.9)
        assert near.fault_id == far.fault_id
        assert near.cache_key != far.cache_key

    def test_cache_key_distinguishes_impact(self):
        f = BridgingFault(node_a="a", node_b="b", impact=1e4)
        assert f.cache_key != f.weakened(2.0).cache_key

    def test_pinhole_changes_drain_voltage(self, mos_circuit):
        f = PinholeFault(device="M1", impact=2e3)
        nominal = operating_point(mos_circuit).v("d")
        faulted = operating_point(f.apply(mos_circuit)).v("d")
        assert abs(faulted - nominal) > 0.05

    def test_faulty_circuit_simulates_with_weak_impact(self, mos_circuit):
        """Injection must converge even at a near-open shunt."""
        f = PinholeFault(device="M1", impact=1e8)
        op = operating_point(f.apply(mos_circuit))
        nominal = operating_point(mos_circuit).v("d")
        assert op.v("d") == pytest.approx(nominal, abs=0.02)


class TestImpactManipulation:
    def test_weaken_increases_resistance(self):
        f = BridgingFault(node_a="a", node_b="b", impact=1e4)
        assert f.weakened(4.0).impact == pytest.approx(4e4)

    def test_strengthen_decreases_resistance(self):
        f = BridgingFault(node_a="a", node_b="b", impact=1e4)
        assert f.strengthened(4.0).impact == pytest.approx(2.5e3)

    def test_weaken_saturates_at_bound(self):
        f = BridgingFault(node_a="a", node_b="b",
                          impact=IMPACT_RESISTANCE_MAX / 2)
        assert f.weakened(10.0).impact == IMPACT_RESISTANCE_MAX
        assert f.weakened(10.0).at_weakest

    def test_strengthen_saturates_at_bound(self):
        f = BridgingFault(node_a="a", node_b="b",
                          impact=IMPACT_RESISTANCE_MIN * 2)
        assert f.strengthened(10.0).impact == IMPACT_RESISTANCE_MIN
        assert f.strengthened(10.0).at_strongest

    def test_rejects_factor_below_one(self):
        f = BridgingFault(node_a="a", node_b="b", impact=1e4)
        with pytest.raises(FaultModelError):
            f.weakened(0.5)
        with pytest.raises(FaultModelError):
            f.strengthened(1.0)

    def test_with_impact_preserves_identity(self):
        f = PinholeFault(device="M1", impact=2e3)
        g = f.with_impact(8e3)
        assert g.fault_id == f.fault_id
        assert g.impact == 8e3

    def test_rejects_out_of_range_impact(self):
        with pytest.raises(FaultModelError):
            BridgingFault(node_a="a", node_b="b", impact=0.1)

    @given(st.floats(min_value=1.01, max_value=100.0))
    def test_weaken_strengthen_inverse(self, factor):
        f = BridgingFault(node_a="a", node_b="b", impact=1e4)
        round_trip = f.weakened(factor).strengthened(factor)
        assert round_trip.impact == pytest.approx(1e4, rel=1e-9)


class TestDictionary:
    def test_bridging_enumeration_counts(self):
        faults = enumerate_bridging_faults(["a", "b", "c", "d"], 1e4)
        assert len(faults) == 6  # C(4,2)

    def test_bridging_rejects_duplicates(self):
        with pytest.raises(FaultModelError):
            enumerate_bridging_faults(["a", "a", "b"], 1e4)

    def test_pinhole_enumeration(self, mos_circuit):
        faults = enumerate_pinhole_faults(mos_circuit)
        assert len(faults) == 1
        assert faults[0].device == "M1"

    def test_exhaustive_counts_paper(self, iv_macro):
        """The paper's 55 = 45 bridging + 10 pinhole fault list."""
        faults = iv_macro.fault_dictionary()
        assert len(faults) == 55
        assert faults.counts_by_type() == {"bridge": 45, "pinhole": 10}

    def test_paper_initial_impacts(self, iv_macro):
        faults = iv_macro.fault_dictionary()
        assert all(f.impact == 10e3 for f in faults.of_type("bridge"))
        assert all(f.impact == 2e3 for f in faults.of_type("pinhole"))

    def test_duplicate_rejected(self):
        f = BridgingFault(node_a="a", node_b="b", impact=1e4)
        g = BridgingFault(node_a="b", node_b="a", impact=2e4)
        with pytest.raises(FaultModelError):
            FaultDictionary((f, g))

    def test_get_and_subset(self, mos_circuit):
        d = exhaustive_fault_dictionary(mos_circuit)
        first = next(iter(d))
        assert d.get(first.fault_id) is first
        sub = d.subset([first.fault_id])
        assert len(sub) == 1

    def test_get_missing_raises(self, mos_circuit):
        d = exhaustive_fault_dictionary(mos_circuit)
        with pytest.raises(FaultModelError):
            d.get("bridge:zz:yy")


class TestInjection:
    def test_inject_with_validation(self, divider_circuit):
        f = BridgingFault(node_a="in", node_b="mid", impact=1e4)
        faulty = inject_fault(divider_circuit, f, validate=True)
        assert f.element_name in faulty

    def test_all_iv_faults_injectable(self, iv_macro):
        """Every one of the 55 dictionary faults produces a valid circuit."""
        circuit = iv_macro.circuit
        for fault in iv_macro.fault_dictionary():
            faulty = inject_fault(circuit, fault, validate=True)
            assert len(faulty) >= len(circuit)
