"""Regression tests: fault-node universes are validated at dictionary
*build* time, not at solve time.

Previously a bridging universe containing a node absent from the circuit
built a dictionary without complaint; the mistake only surfaced as a
FaultModelError when the overlay stamp failed to resolve, deep inside a
generation run (possibly in a worker process).  ``validate_fault_nodes``
now rejects it up front with the full list of offending nodes.
"""

import pytest

from repro.circuit import CircuitBuilder
from repro.errors import FaultModelError
from repro.faults import (
    exhaustive_fault_dictionary,
    ifa_fault_dictionary,
    validate_fault_nodes,
)


@pytest.fixture()
def divider():
    return (CircuitBuilder("divider")
            .voltage_source("VIN", "in", "0", 5.0)
            .resistor("R1", "in", "mid", "10k")
            .resistor("R2", "mid", "0", "10k")
            .build())


class TestValidateFaultNodes:
    def test_valid_nodes_pass_through(self, divider):
        assert validate_fault_nodes(divider, ["in", "mid"]) == \
            ("in", "mid")

    def test_ground_aliases_accepted(self, divider):
        assert validate_fault_nodes(divider, ["0", "gnd"]) == \
            ("0", "gnd")

    def test_missing_node_rejected_with_full_list(self, divider):
        with pytest.raises(FaultModelError) as exc_info:
            validate_fault_nodes(divider, ["in", "n2", "n3"])
        message = str(exc_info.value)
        assert "'n2'" in message and "'n3'" in message
        assert "solve time" in message

    def test_generator_input_consumed_once(self, divider):
        nodes = validate_fault_nodes(divider,
                                     (n for n in ("in", "mid")))
        assert nodes == ("in", "mid")


class TestBuildTimeRejection:
    def test_exhaustive_dictionary_rejects_bad_universe(self, divider):
        with pytest.raises(FaultModelError, match="n99"):
            exhaustive_fault_dictionary(divider, nodes=["in", "n99"])

    def test_ifa_dictionary_rejects_bad_universe(self, divider):
        with pytest.raises(FaultModelError, match="n99"):
            ifa_fault_dictionary(divider, nodes=("in", "n99"))

    def test_default_universe_still_builds(self, divider):
        # No explicit universe: nodes come from the circuit itself and
        # are valid by construction.
        dictionary = exhaustive_fault_dictionary(divider)
        assert len(tuple(dictionary)) > 0
