"""Tests for the IFA-style weighted fault extraction."""

import pytest

from repro.errors import FaultModelError
from repro.faults import exhaustive_fault_dictionary
from repro.faults.ifa import (
    IfaWeights,
    bridge_likelihood,
    ifa_fault_dictionary,
    pinhole_likelihood,
    weighted_coverage,
)


class TestLikelihoodProxies:
    def test_shared_device_nets_more_likely(self, iv_macro):
        """n2 and n3 share the second stage / compensation path; n2 and
        vout share nothing -> the former bridge is more likely."""
        circuit = iv_macro.circuit
        close = bridge_likelihood(circuit, "n2", "n3")
        far = bridge_likelihood(circuit, "ntail", "vout")
        assert close > far

    def test_big_nets_more_likely(self, iv_macro):
        """The supply net touches nearly everything: bridges onto vdd
        outrank bridges between two small internal nets."""
        circuit = iv_macro.circuit
        supply = bridge_likelihood(circuit, "vdd", "n1")
        internal = bridge_likelihood(circuit, "ncomp", "iin")
        assert supply > internal

    def test_weights_validated(self):
        with pytest.raises(FaultModelError):
            IfaWeights(shared_device=-1.0)
        with pytest.raises(FaultModelError):
            IfaWeights(shared_device=0.0, net_size=0.0)

    def test_pinhole_likelihood_is_gate_area(self, iv_macro):
        m1 = iv_macro.circuit.element("M1")    # 40u x 2u
        m9 = iv_macro.circuit.element("M9")    # 100u x 2u
        assert pinhole_likelihood(m9) > pinhole_likelihood(m1)
        assert pinhole_likelihood(m1) == pytest.approx(40e-6 * 2e-6)


class TestIfaDictionary:
    def test_same_universe_as_exhaustive(self, iv_macro):
        weighted = ifa_fault_dictionary(iv_macro.circuit,
                                        nodes=iv_macro.standard_nodes)
        exhaustive = exhaustive_fault_dictionary(
            iv_macro.circuit, nodes=iv_macro.standard_nodes)
        assert {f.fault_id for f in weighted} == \
            {f.fault_id for f in exhaustive}

    def test_sorted_by_likelihood(self, iv_macro):
        weighted = ifa_fault_dictionary(iv_macro.circuit,
                                        nodes=iv_macro.standard_nodes)
        likelihoods = [f.likelihood for f in weighted]
        assert likelihoods == sorted(likelihoods, reverse=True)

    def test_normalized_mean_one_per_family(self, iv_macro):
        weighted = ifa_fault_dictionary(iv_macro.circuit,
                                        nodes=iv_macro.standard_nodes)
        bridges = weighted.of_type("bridge")
        pinholes = weighted.of_type("pinhole")
        assert sum(f.likelihood for f in bridges) / len(bridges) == \
            pytest.approx(1.0)
        assert sum(f.likelihood for f in pinholes) / len(pinholes) == \
            pytest.approx(1.0)

    def test_top_n_filter(self, iv_macro):
        top = ifa_fault_dictionary(iv_macro.circuit,
                                   nodes=iv_macro.standard_nodes,
                                   top_n=10)
        assert len(top) == 10

    def test_min_likelihood_filter(self, iv_macro):
        filtered = ifa_fault_dictionary(iv_macro.circuit,
                                        nodes=iv_macro.standard_nodes,
                                        min_likelihood=1.0)
        assert 0 < len(filtered) < 55
        assert all(f.likelihood >= 1.0 for f in filtered)

    def test_top_n_validation(self, iv_macro):
        with pytest.raises(FaultModelError):
            ifa_fault_dictionary(iv_macro.circuit, top_n=0)

    def test_impacts_are_paper_defaults(self, iv_macro):
        weighted = ifa_fault_dictionary(iv_macro.circuit,
                                        nodes=iv_macro.standard_nodes)
        assert all(f.impact == 10e3 for f in weighted.of_type("bridge"))
        assert all(f.impact == 2e3 for f in weighted.of_type("pinhole"))


class TestWeightedCoverage:
    def test_full_coverage_is_one(self, iv_macro):
        faults = ifa_fault_dictionary(iv_macro.circuit,
                                      nodes=iv_macro.standard_nodes)
        all_ids = {f.fault_id for f in faults}
        assert weighted_coverage(all_ids, faults) == pytest.approx(1.0)

    def test_empty_coverage_is_zero(self, iv_macro):
        faults = ifa_fault_dictionary(iv_macro.circuit,
                                      nodes=iv_macro.standard_nodes)
        assert weighted_coverage(set(), faults) == 0.0

    def test_likely_faults_weigh_more(self, iv_macro):
        faults = ifa_fault_dictionary(iv_macro.circuit,
                                      nodes=iv_macro.standard_nodes)
        ordered = list(faults)
        top_id = {ordered[0].fault_id}
        bottom_id = {ordered[-1].fault_id}
        assert weighted_coverage(top_id, faults) > \
            weighted_coverage(bottom_id, faults)
