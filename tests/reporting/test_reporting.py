"""Tests for tables, heatmaps and experiment records."""

import numpy as np
import pytest

from repro.reporting import (
    ExperimentRecord,
    default_buckets,
    load_records,
    render_table,
    render_tps_graph,
    write_records,
)
from repro.testgen.tps import TpsGraph


class TestTable:
    def test_basic_render(self):
        text = render_table(["name", "count"], [["a", 1], ["bb", 22]])
        assert "| name | count |" in text
        assert "| bb   |    22 |" in text

    def test_title(self):
        text = render_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_alignment_override(self):
        text = render_table(["l", "r"], [["a", "b"]], align=["r", "l"])
        lines = text.splitlines()
        assert "| a | b |" in lines[3]

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])

    def test_rejects_bad_align(self):
        with pytest.raises(ValueError):
            render_table(["a"], [["x"]], align=["l", "r"])


def graph_1d():
    return TpsGraph(config_name="cfg", fault_id="bridge:a:b", impact=1e4,
                    param_names=("p",), axes=(np.linspace(0, 1, 5),),
                    values=np.array([1.0, 0.5, -0.2, -1.0, -0.4]))


def graph_2d():
    x = np.linspace(0, 1, 4)
    y = np.linspace(0, 2, 3)
    values = np.outer(np.linspace(1, -1, 4), np.ones(3))
    return TpsGraph(config_name="cfg", fault_id="bridge:a:b", impact=1e4,
                    param_names=("px", "py"), axes=(x, y), values=values)


class TestHeatmap:
    def test_1d_render(self):
        text = render_tps_graph(graph_1d())
        assert "bridge:a:b" in text
        assert "legend" in text

    def test_2d_render_has_rows_per_y(self):
        text = render_tps_graph(graph_2d())
        # one raster row per y-axis point
        raster_rows = [ln for ln in text.splitlines() if "|" in ln]
        assert len(raster_rows) == 3

    def test_min_reported_in_header(self):
        text = render_tps_graph(graph_1d())
        assert "min S = -1" in text

    def test_buckets_span_range(self):
        buckets = default_buckets(graph_1d().values, 4)
        assert buckets[0] == pytest.approx(1.0)
        assert buckets[-1] == pytest.approx(-1.0)

    def test_constant_graph_renders(self):
        graph = TpsGraph(config_name="c", fault_id="f", impact=1.0,
                         param_names=("p",), axes=(np.linspace(0, 1, 3),),
                         values=np.ones(3))
        assert "legend" in render_tps_graph(graph)


class TestRecords:
    def test_markdown_rendering(self):
        record = ExperimentRecord(
            experiment_id="Table 2", description="distribution",
            paper="#1 wins 22 bridges", measured="#1 wins 24 bridges",
            agreement="qualitative", note="OCR-damaged cells")
        text = record.to_markdown()
        assert "### Table 2" in text
        assert "**Paper:** #1 wins 22 bridges" in text
        assert "OCR-damaged" in text

    def test_write_load_roundtrip(self, tmp_path):
        path = tmp_path / "records.jsonl"
        records = [
            ExperimentRecord("Fig. 2", "tps graph", "a", "b"),
            ExperimentRecord("Fig. 3", "tps graph", "c", "d",
                             agreement="matches"),
        ]
        write_records(records, path)
        loaded = load_records(path)
        assert len(loaded) == 2
        assert loaded[1].agreement == "matches"

    def test_append_semantics(self, tmp_path):
        path = tmp_path / "records.jsonl"
        write_records([ExperimentRecord("A", "x", "p", "m")], path)
        write_records([ExperimentRecord("B", "y", "p", "m")], path)
        assert len(load_records(path)) == 2

    def test_load_missing_file(self, tmp_path):
        assert load_records(tmp_path / "nope.jsonl") == []
