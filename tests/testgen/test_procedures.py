"""Direct tests of the measurement procedures (beyond macro usage)."""

import numpy as np
import pytest

from repro.circuit import CircuitBuilder
from repro.errors import TestGenerationError
from repro.testgen import (
    ACGainProcedure,
    DCProcedure,
    Probe,
    SineTHDProcedure,
    StepProcedure,
)


@pytest.fixture()
def rc_lowpass():
    return (CircuitBuilder("rc")
            .voltage_source("VIN", "in", "0", 1.0)
            .resistor("R1", "in", "out", 1e3)
            .capacitor("C1", "out", "0", 1e-6)
            .build())


class TestProbe:
    def test_rejects_bad_kind(self):
        with pytest.raises(TestGenerationError):
            Probe("z", "node")

    def test_str(self):
        assert str(Probe("v", "vout")) == "V(vout)"
        assert str(Probe("i", "VDD")) == "I(VDD)"


class TestDCProcedure:
    def test_simulates_and_deviates(self, rc_lowpass):
        procedure = DCProcedure("VIN", "level", (Probe("v", "out"),))
        nominal = procedure.simulate(rc_lowpass, {"level": 2.0})
        assert nominal[0] == pytest.approx(2.0, abs=1e-6)
        observed = np.array([2.3])
        np.testing.assert_allclose(
            procedure.deviations(nominal, observed), [0.3], atol=1e-9)

    def test_rejects_empty_probes(self):
        with pytest.raises(TestGenerationError):
            DCProcedure("VIN", "level", ())

    def test_swap_rejects_non_source(self, rc_lowpass):
        procedure = DCProcedure("R1", "level", (Probe("v", "out"),))
        with pytest.raises(TestGenerationError):
            procedure.simulate(rc_lowpass, {"level": 1.0})

    def test_reading_scales_are_magnitudes(self):
        procedure = DCProcedure("VIN", "level", (Probe("v", "out"),))
        np.testing.assert_allclose(
            procedure.reading_scales(np.array([-2.5])), [2.5])


class TestSineTHDProcedure:
    def test_linear_circuit_has_zero_thd(self):
        # tau = 1 us << the 1 ms stimulus period, so one settle period
        # fully decays the start-up transient (no spectral leakage).
        circuit = (CircuitBuilder("rc")
                   .voltage_source("VIN", "in", "0", 1.0)
                   .resistor("R1", "in", "out", 1e3)
                   .capacitor("C1", "out", "0", 1e-9)
                   .build())
        procedure = SineTHDProcedure("VIN", "out", dc_param="dc",
                                     freq_param="freq",
                                     samples_per_period=32,
                                     settle_periods=1, analysis_periods=2)
        thd = procedure.simulate(circuit, {"dc": 1.0, "freq": 1e3})
        assert thd[0] == pytest.approx(0.0, abs=0.05)

    def test_rejects_bad_amplitude_ratio(self):
        with pytest.raises(TestGenerationError):
            SineTHDProcedure("VIN", "out", amplitude_ratio=1.5)

    def test_rejects_non_positive_frequency(self, rc_lowpass):
        procedure = SineTHDProcedure("VIN", "out", dc_param="dc",
                                     freq_param="freq")
        with pytest.raises(TestGenerationError):
            procedure.simulate(rc_lowpass, {"dc": 1.0, "freq": 0.0})

    def test_deviation_cap_handles_inf(self):
        procedure = SineTHDProcedure("VIN", "out")
        deviation = procedure.deviations(np.array([0.1]),
                                         np.array([float("inf")]))
        assert np.isfinite(deviation[0])
        assert deviation[0] > 1e8


class TestStepProcedure:
    def test_waveform_shape(self, rc_lowpass):
        procedure = StepProcedure("VIN", "out", mode="max",
                                  sample_rate=1e6, test_time=20e-6,
                                  t_step=1e-6, slew_rate=1e7)
        raw = procedure.simulate(rc_lowpass, {"base": 0.0, "elev": 1.0})
        assert len(raw) == 21

    def test_modes_differ(self, rc_lowpass):
        base = dict(sample_rate=1e6, test_time=20e-6, t_step=1e-6,
                    slew_rate=1e7)
        maxp = StepProcedure("VIN", "out", mode="max", **base)
        meanp = StepProcedure("VIN", "out", mode="accumulate", **base)
        nominal = maxp.simulate(rc_lowpass, {"base": 0.0, "elev": 1.0})
        shifted = nominal + np.linspace(0.0, 0.2, len(nominal))
        d_max = maxp.deviations(nominal, shifted)[0]
        d_mean = meanp.deviations(nominal, shifted)[0]
        assert d_max == pytest.approx(0.2)
        assert d_mean == pytest.approx(0.1, abs=0.01)

    def test_rejects_bad_mode(self):
        with pytest.raises(TestGenerationError):
            StepProcedure("VIN", "out", mode="median")

    def test_shape_mismatch_rejected(self):
        procedure = StepProcedure("VIN", "out")
        with pytest.raises(TestGenerationError):
            procedure.deviations(np.zeros(5), np.zeros(6))


class TestACGainProcedure:
    def test_rc_corner_gain(self, rc_lowpass):
        procedure = ACGainProcedure("VIN", "out")
        fc = 1.0 / (2 * np.pi * 1e3 * 1e-6)
        gain = procedure.simulate(rc_lowpass, {"freq": fc})
        assert gain[0] == pytest.approx(-3.0103, abs=0.01)

    def test_bias_param_sets_operating_point(self):
        # A diode-loaded divider: small-signal gain depends on bias.
        c = (CircuitBuilder("nl")
             .voltage_source("VIN", "in", "0", 0.2)
             .resistor("R1", "in", "out", 1e3)
             .diode("D1", "out", "0")
             .build())
        procedure = ACGainProcedure("VIN", "out", bias_param="bias")
        low = procedure.simulate(c, {"bias": 0.2, "freq": 1e3})[0]
        high = procedure.simulate(c, {"bias": 0.9, "freq": 1e3})[0]
        assert high < low  # diode conducts harder -> more attenuation

    def test_dead_output_floors(self, rc_lowpass):
        shorted = (CircuitBuilder("dead")
                   .voltage_source("VIN", "in", "0", 1.0)
                   .resistor("R1", "in", "out", 1e3)
                   .resistor("RS", "out", "0", 1e-3)
                   .build())
        procedure = ACGainProcedure("VIN", "out", floor_db=-200.0)
        gain = procedure.simulate(shorted, {"freq": 1e3})
        assert np.isfinite(gain[0])
        assert gain[0] >= -200.0

    def test_rejects_non_positive_frequency(self, rc_lowpass):
        procedure = ACGainProcedure("VIN", "out")
        with pytest.raises(TestGenerationError):
            procedure.simulate(rc_lowpass, {"freq": -1.0})
