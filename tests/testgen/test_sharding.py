"""Sharded dictionary execution: determinism and merge correctness.

The sharding contract: shard membership is a pure function of
(fault_id, n_shards) — stable across runs, machines and worker counts —
and sharded results are bitwise independent of how many workers served
the shards (each shard runs on a fresh replicated executor).
"""

import numpy as np
import pytest

from repro.errors import TestGenerationError
from repro.faults import BridgingFault
from repro.testgen import (
    GenerationSettings,
    generate_tests,
    mc_screen_dictionary_sharded,
    screen_dictionary_sharded,
    shard_assignments,
    shard_faults,
    shard_index,
)
from repro.tolerance import (
    empirical_process_boxes,
    screen_dictionary_montecarlo,
)


class TestShardAssignment:
    def test_content_addressed_golden_values(self):
        """Assignments depend only on the id text: pin a few digests so
        any change to the hashing scheme fails loudly (records on disk
        reference shard numbers)."""
        assert shard_index("bridge:n1:n2", 16) == 1
        assert shard_index("bridge:0:vdd", 16) == 14
        assert shard_index("pinhole:M6", 16) == 5
        assert shard_index("bridge:n1:n2", 1) == 0

    def test_independent_of_enumeration_order(self, rc_macro):
        faults = list(rc_macro.fault_dictionary())
        forward = dict(zip((f.fault_id for f in faults),
                           shard_assignments(faults, 8)))
        reordered = list(reversed(faults))
        backward = dict(zip((f.fault_id for f in reordered),
                            shard_assignments(reordered, 8)))
        assert forward == backward

    def test_partition_is_disjoint_and_complete(self, rc_macro):
        faults = list(rc_macro.fault_dictionary())
        shards = shard_faults(faults, 4)
        assert len(shards) == 4
        flattened = [f.fault_id for shard in shards for f in shard]
        assert sorted(flattened) == sorted(f.fault_id for f in faults)
        assert len(set(flattened)) == len(flattened)

    def test_order_preserved_within_shard(self, rc_macro):
        faults = list(rc_macro.fault_dictionary())
        positions = {f.fault_id: k for k, f in enumerate(faults)}
        for shard in shard_faults(faults, 3):
            indices = [positions[f.fault_id] for f in shard]
            assert indices == sorted(indices)

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(TestGenerationError):
            shard_index("bridge:n1:n2", 0)


class TestShardedScreening:
    @pytest.fixture(scope="class")
    def screen_setup(self, rc_macro):
        configs = {c.name: c for c in rc_macro.test_configurations()}
        config = configs["dc-out"]
        return (rc_macro, config, list(rc_macro.fault_dictionary()),
                list(config.parameters.seeds))

    def test_serial_run_merges_in_dictionary_order(self, screen_setup):
        macro, config, faults, vector = screen_setup
        result = screen_dictionary_sharded(
            macro.circuit, config, faults, vector, macro.options,
            n_shards=4, max_workers=1)
        assert result.fault_ids == tuple(f.fault_id for f in faults)
        assert result.n_shards == 4
        assert sum(result.shard_sizes) == len(faults)
        assert len(result.reports) == len(faults)
        assert result.executor_stats.faulty_simulations >= len(faults)

    def test_worker_count_does_not_change_results(self, screen_setup):
        """Same shard partition, bitwise-identical reports, whether the
        shards run in-process or on two worker processes."""
        macro, config, faults, vector = screen_setup
        serial = screen_dictionary_sharded(
            macro.circuit, config, faults, vector, macro.options,
            n_shards=3, max_workers=1)
        parallel = screen_dictionary_sharded(
            macro.circuit, config, faults, vector, macro.options,
            n_shards=3, max_workers=2)
        assert serial.fault_ids == parallel.fault_ids
        assert serial.shard_sizes == parallel.shard_sizes
        for a, b in zip(serial.reports, parallel.reports):
            assert a.value == b.value
            assert np.array_equal(a.deviations, b.deviations)
            assert np.array_equal(a.boxes, b.boxes)
        assert (serial.executor_stats.faulty_simulations
                == parallel.executor_stats.faulty_simulations)

    def test_verdicts_match_unsharded_screening(self, screen_setup):
        macro, config, faults, vector = screen_setup
        from repro.testgen.execution import TestExecutor
        sharded = screen_dictionary_sharded(
            macro.circuit, config, faults, vector, macro.options,
            n_shards=5, max_workers=1)
        executor = TestExecutor(macro.circuit, config, macro.options)
        whole = executor.screen_faults(faults, vector)
        for a, b in zip(sharded.reports, whole):
            assert a.detected == b.detected
            assert a.value == pytest.approx(b.value, rel=1e-6, abs=1e-9)

    def test_report_lookup_and_errors(self, screen_setup):
        macro, config, faults, vector = screen_setup
        result = screen_dictionary_sharded(
            macro.circuit, config, faults, vector, macro.options,
            n_shards=2, max_workers=1)
        first = faults[0].fault_id
        assert result.report_for(first) is result.reports[0]
        with pytest.raises(TestGenerationError):
            result.report_for("bridge:not:there")

    def test_empty_and_duplicate_inputs_rejected(self, screen_setup):
        macro, config, _, vector = screen_setup
        with pytest.raises(TestGenerationError):
            screen_dictionary_sharded(macro.circuit, config, [], vector,
                                      macro.options)
        twin = BridgingFault(node_a="vin", node_b="vout", impact=1e3)
        with pytest.raises(TestGenerationError):
            screen_dictionary_sharded(
                macro.circuit, config, [twin, twin.with_impact(2e3)],
                vector, macro.options)


class TestMonteCarloSharding:
    """Determinism contract of the sharded Monte Carlo screen: detection
    probabilities are **bitwise** identical across repeat runs and
    across worker counts (shards redraw the same seeded batch and score
    against one parent-computed box)."""

    N_SAMPLES = 16
    SEED = 3

    @pytest.fixture(scope="class")
    def mc_setup(self, rc_macro):
        configs = {c.name: c for c in rc_macro.test_configurations()}
        config = configs["dc-out"]
        return (rc_macro, config, list(rc_macro.fault_dictionary()),
                list(config.parameters.seeds))

    def _run(self, setup, **kwargs):
        macro, config, faults, vector = setup
        return mc_screen_dictionary_sharded(
            macro.circuit, config, faults, vector, macro.options,
            n_samples=self.N_SAMPLES, seed=self.SEED, **kwargs)

    def test_merges_in_dictionary_order(self, mc_setup):
        result = self._run(mc_setup, n_shards=4, max_workers=1)
        _, __, faults, ___ = mc_setup
        assert result.fault_ids == tuple(f.fault_id for f in faults)
        assert result.n_samples == self.N_SAMPLES
        assert result.seed == self.SEED
        assert result.vectorized

    def test_bitwise_identical_across_worker_counts(self, mc_setup):
        serial = self._run(mc_setup, n_shards=3, max_workers=1)
        parallel = self._run(mc_setup, n_shards=3, max_workers=2)
        assert serial.fault_ids == parallel.fault_ids
        np.testing.assert_array_equal(serial.boxes, parallel.boxes)
        np.testing.assert_array_equal(serial.sample_readings,
                                      parallel.sample_readings)
        for a, b in zip(serial.estimates, parallel.estimates):
            np.testing.assert_array_equal(a.margins, b.margins)
            np.testing.assert_array_equal(a.detected, b.detected)
            assert a.detection_probability == b.detection_probability

    def test_bitwise_identical_across_runs(self, mc_setup):
        first = self._run(mc_setup, n_shards=4, max_workers=2)
        second = self._run(mc_setup, n_shards=4, max_workers=2)
        for a, b in zip(first.estimates, second.estimates):
            np.testing.assert_array_equal(a.margins, b.margins)
            np.testing.assert_array_equal(a.detected, b.detected)

    def test_verdicts_match_unsharded_screen(self, mc_setup):
        """With the canonical box shared, sharded and unsharded runs
        reach identical detection verdicts."""
        macro, config, faults, vector = mc_setup
        boxes = empirical_process_boxes(
            macro.circuit, config, vector, macro.options,
            n_samples=self.N_SAMPLES, seed=self.SEED)
        sharded = self._run(mc_setup, boxes=boxes, n_shards=3,
                            max_workers=1)
        whole = screen_dictionary_montecarlo(
            macro.circuit, config, faults, vector, macro.options,
            n_samples=self.N_SAMPLES, seed=self.SEED, boxes=boxes)
        for a, b in zip(sharded.estimates, whole.estimates):
            np.testing.assert_array_equal(a.detected, b.detected)
            np.testing.assert_allclose(a.margins, b.margins,
                                       rtol=1e-6, atol=1e-9)

    def test_stats_merged_across_shards(self, mc_setup):
        result = self._run(mc_setup, n_shards=4, max_workers=1)
        # 4 shards x (nominal base factorization) plus any overlay bases.
        assert result.stats.factorizations >= 4
        total_columns = (result.stats.columns_screened
                         + result.stats.columns_confirmed
                         + result.stats.columns_failed)
        # Every shard screens its faults' columns plus a fault-free pass.
        assert total_columns >= len(result.fault_ids) * self.N_SAMPLES

    def test_empty_and_duplicate_inputs_rejected(self, mc_setup):
        macro, config, faults, vector = mc_setup
        with pytest.raises(TestGenerationError):
            mc_screen_dictionary_sharded(macro.circuit, config, [],
                                         vector, macro.options)
        with pytest.raises(TestGenerationError):
            mc_screen_dictionary_sharded(
                macro.circuit, config, [faults[0], faults[0]], vector,
                macro.options)


class TestShardedGeneration:
    def test_sharded_generation_matches_serial(self, rc_macro,
                                               rc_generation):
        """generate_tests over shards returns the same per-fault
        assignments (order, winning configuration, detection flags) as
        the serial driver."""
        sharded = generate_tests(
            rc_macro.circuit, rc_macro.test_configurations(),
            rc_macro.fault_dictionary(), GenerationSettings(),
            rc_macro.options, n_jobs=2, n_shards=3)
        assert len(sharded.tests) == len(rc_generation.tests)
        for serial_test, sharded_test in zip(rc_generation.tests,
                                             sharded.tests):
            assert (serial_test.fault.fault_id
                    == sharded_test.fault.fault_id)
            assert serial_test.config_name == sharded_test.config_name
            assert (serial_test.detected_at_dictionary
                    == sharded_test.detected_at_dictionary)
            assert serial_test.undetectable == sharded_test.undetectable
        assert sharded.total_simulations > 0
