"""Sharded dictionary execution: determinism and merge correctness.

The sharding contract: shard membership is a pure function of
(fault_id, n_shards) — stable across runs, machines and worker counts —
and sharded results are bitwise independent of how many workers served
the shards (each shard runs on a fresh replicated executor).
"""

import numpy as np
import pytest

from repro.errors import TestGenerationError
from repro.faults import BridgingFault
from repro.testgen import (
    GenerationSettings,
    generate_tests,
    screen_dictionary_sharded,
    shard_assignments,
    shard_faults,
    shard_index,
)


class TestShardAssignment:
    def test_content_addressed_golden_values(self):
        """Assignments depend only on the id text: pin a few digests so
        any change to the hashing scheme fails loudly (records on disk
        reference shard numbers)."""
        assert shard_index("bridge:n1:n2", 16) == 1
        assert shard_index("bridge:0:vdd", 16) == 14
        assert shard_index("pinhole:M6", 16) == 5
        assert shard_index("bridge:n1:n2", 1) == 0

    def test_independent_of_enumeration_order(self, rc_macro):
        faults = list(rc_macro.fault_dictionary())
        forward = dict(zip((f.fault_id for f in faults),
                           shard_assignments(faults, 8)))
        reordered = list(reversed(faults))
        backward = dict(zip((f.fault_id for f in reordered),
                            shard_assignments(reordered, 8)))
        assert forward == backward

    def test_partition_is_disjoint_and_complete(self, rc_macro):
        faults = list(rc_macro.fault_dictionary())
        shards = shard_faults(faults, 4)
        assert len(shards) == 4
        flattened = [f.fault_id for shard in shards for f in shard]
        assert sorted(flattened) == sorted(f.fault_id for f in faults)
        assert len(set(flattened)) == len(flattened)

    def test_order_preserved_within_shard(self, rc_macro):
        faults = list(rc_macro.fault_dictionary())
        positions = {f.fault_id: k for k, f in enumerate(faults)}
        for shard in shard_faults(faults, 3):
            indices = [positions[f.fault_id] for f in shard]
            assert indices == sorted(indices)

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(TestGenerationError):
            shard_index("bridge:n1:n2", 0)


class TestShardedScreening:
    @pytest.fixture(scope="class")
    def screen_setup(self, rc_macro):
        configs = {c.name: c for c in rc_macro.test_configurations()}
        config = configs["dc-out"]
        return (rc_macro, config, list(rc_macro.fault_dictionary()),
                list(config.parameters.seeds))

    def test_serial_run_merges_in_dictionary_order(self, screen_setup):
        macro, config, faults, vector = screen_setup
        result = screen_dictionary_sharded(
            macro.circuit, config, faults, vector, macro.options,
            n_shards=4, max_workers=1)
        assert result.fault_ids == tuple(f.fault_id for f in faults)
        assert result.n_shards == 4
        assert sum(result.shard_sizes) == len(faults)
        assert len(result.reports) == len(faults)
        assert result.executor_stats.faulty_simulations >= len(faults)

    def test_worker_count_does_not_change_results(self, screen_setup):
        """Same shard partition, bitwise-identical reports, whether the
        shards run in-process or on two worker processes."""
        macro, config, faults, vector = screen_setup
        serial = screen_dictionary_sharded(
            macro.circuit, config, faults, vector, macro.options,
            n_shards=3, max_workers=1)
        parallel = screen_dictionary_sharded(
            macro.circuit, config, faults, vector, macro.options,
            n_shards=3, max_workers=2)
        assert serial.fault_ids == parallel.fault_ids
        assert serial.shard_sizes == parallel.shard_sizes
        for a, b in zip(serial.reports, parallel.reports):
            assert a.value == b.value
            assert np.array_equal(a.deviations, b.deviations)
            assert np.array_equal(a.boxes, b.boxes)
        assert (serial.executor_stats.faulty_simulations
                == parallel.executor_stats.faulty_simulations)

    def test_verdicts_match_unsharded_screening(self, screen_setup):
        macro, config, faults, vector = screen_setup
        from repro.testgen.execution import TestExecutor
        sharded = screen_dictionary_sharded(
            macro.circuit, config, faults, vector, macro.options,
            n_shards=5, max_workers=1)
        executor = TestExecutor(macro.circuit, config, macro.options)
        whole = executor.screen_faults(faults, vector)
        for a, b in zip(sharded.reports, whole):
            assert a.detected == b.detected
            assert a.value == pytest.approx(b.value, rel=1e-6, abs=1e-9)

    def test_report_lookup_and_errors(self, screen_setup):
        macro, config, faults, vector = screen_setup
        result = screen_dictionary_sharded(
            macro.circuit, config, faults, vector, macro.options,
            n_shards=2, max_workers=1)
        first = faults[0].fault_id
        assert result.report_for(first) is result.reports[0]
        with pytest.raises(TestGenerationError):
            result.report_for("bridge:not:there")

    def test_empty_and_duplicate_inputs_rejected(self, screen_setup):
        macro, config, _, vector = screen_setup
        with pytest.raises(TestGenerationError):
            screen_dictionary_sharded(macro.circuit, config, [], vector,
                                      macro.options)
        twin = BridgingFault(node_a="vin", node_b="vout", impact=1e3)
        with pytest.raises(TestGenerationError):
            screen_dictionary_sharded(
                macro.circuit, config, [twin, twin.with_impact(2e3)],
                vector, macro.options)


class TestShardedGeneration:
    def test_sharded_generation_matches_serial(self, rc_macro,
                                               rc_generation):
        """generate_tests over shards returns the same per-fault
        assignments (order, winning configuration, detection flags) as
        the serial driver."""
        sharded = generate_tests(
            rc_macro.circuit, rc_macro.test_configurations(),
            rc_macro.fault_dictionary(), GenerationSettings(),
            rc_macro.options, n_jobs=2, n_shards=3)
        assert len(sharded.tests) == len(rc_generation.tests)
        for serial_test, sharded_test in zip(rc_generation.tests,
                                             sharded.tests):
            assert (serial_test.fault.fault_id
                    == sharded_test.fault.fault_id)
            assert serial_test.config_name == sharded_test.config_name
            assert (serial_test.detected_at_dictionary
                    == sharded_test.detected_at_dictionary)
            assert serial_test.undetectable == sharded_test.undetectable
        assert sharded.total_simulations > 0
