"""Unit tests for parameter sets and test configurations."""

import numpy as np
import pytest

from repro.errors import TestGenerationError
from repro.testgen import (
    BoundParameter,
    ParameterSet,
    ParameterSpec,
    ReturnValueSpec,
    Test,
    TestConfiguration,
    TestConfigurationDescription,
)
from repro.testgen.procedures import DCProcedure, Probe
from repro.tolerance import ConstantBoxFunction


def make_config(n_params=1):
    names = ("base", "elev")[:n_params]
    description = TestConfigurationDescription(
        name="cfg", macro_type="t", title="Test",
        control_nodes=("in",), observe_nodes=("out",),
        stimulus_template="dc(base)", parameters=names,
        return_values=(ReturnValueSpec("dv", "voltage"),))
    parameters = tuple(
        BoundParameter(ParameterSpec(name, "A"), 0.0, 10.0, 2.0)
        for name in names)
    return TestConfiguration(
        description, parameters,
        DCProcedure("VIN", "base", (Probe("v", "out"),)),
        ConstantBoxFunction([0.1]))


class TestParameterSpec:
    def test_rejects_non_identifier(self):
        with pytest.raises(TestGenerationError):
            ParameterSpec("bad name")

    def test_bound_parameter_validation(self):
        spec = ParameterSpec("p")
        with pytest.raises(TestGenerationError):
            BoundParameter(spec, 5.0, 1.0, 2.0)  # lower >= upper
        with pytest.raises(TestGenerationError):
            BoundParameter(spec, 0.0, 1.0, 2.0)  # seed outside

    def test_clip_normalize(self):
        p = BoundParameter(ParameterSpec("p"), 0.0, 4.0, 1.0)
        assert p.clip(-1.0) == 0.0
        assert p.clip(9.0) == 4.0
        assert p.normalize(3.0) == pytest.approx(0.75)
        assert p.denormalize(0.25) == pytest.approx(1.0)
        assert p.span == 4.0


class TestParameterSet:
    def setup_method(self):
        self.params = ParameterSet([
            BoundParameter(ParameterSpec("a"), 0.0, 1.0, 0.5),
            BoundParameter(ParameterSpec("b"), 10.0, 20.0, 15.0),
        ])

    def test_names_bounds_seeds(self):
        assert self.params.names == ("a", "b")
        np.testing.assert_allclose(self.params.bounds,
                                   [[0, 1], [10, 20]])
        np.testing.assert_allclose(self.params.seeds, [0.5, 15.0])

    def test_dict_vector_roundtrip(self):
        d = self.params.to_dict([0.3, 12.0])
        assert d == {"a": 0.3, "b": 12.0}
        np.testing.assert_allclose(self.params.to_vector(d), [0.3, 12.0])

    def test_to_vector_missing_key_raises(self):
        with pytest.raises(TestGenerationError):
            self.params.to_vector({"a": 1.0})

    def test_to_dict_wrong_shape_raises(self):
        with pytest.raises(TestGenerationError):
            self.params.to_dict([1.0])

    def test_normalize(self):
        np.testing.assert_allclose(
            self.params.normalize([0.5, 15.0]), [0.5, 0.5])

    def test_quantized_key_stable(self):
        k1 = self.params.quantized_key([0.5, 15.0])
        k2 = self.params.quantized_key([0.5 + 1e-9, 15.0])
        assert k1 == k2

    def test_quantized_key_distinguishes(self):
        k1 = self.params.quantized_key([0.5, 15.0])
        k2 = self.params.quantized_key([0.6, 15.0])
        assert k1 != k2

    def test_duplicate_names_rejected(self):
        p = BoundParameter(ParameterSpec("a"), 0.0, 1.0, 0.5)
        with pytest.raises(TestGenerationError):
            ParameterSet([p, p])

    def test_empty_rejected(self):
        with pytest.raises(TestGenerationError):
            ParameterSet([])

    def test_getitem(self):
        assert self.params["b"].upper == 20.0
        with pytest.raises(TestGenerationError):
            self.params["zz"]


class TestDescription:
    def test_describe_renders_card(self):
        config = make_config()
        card = config.description.describe()
        assert "Macro type: t" in card
        assert "stimulus: dc(base)" in card
        assert "dv [voltage]" in card

    def test_requires_return_values(self):
        with pytest.raises(TestGenerationError):
            TestConfigurationDescription(
                name="x", macro_type="t", title="T",
                control_nodes=("in",), observe_nodes=("out",),
                stimulus_template="", parameters=("p",),
                return_values=())

    def test_requires_nodes(self):
        with pytest.raises(TestGenerationError):
            TestConfigurationDescription(
                name="x", macro_type="t", title="T",
                control_nodes=(), observe_nodes=("out",),
                stimulus_template="", parameters=("p",),
                return_values=(ReturnValueSpec("r", "voltage"),))


class TestConfigurationImpl:
    def test_parameter_name_mismatch_rejected(self):
        description = TestConfigurationDescription(
            name="cfg", macro_type="t", title="T",
            control_nodes=("in",), observe_nodes=("out",),
            stimulus_template="", parameters=("declared",),
            return_values=(ReturnValueSpec("dv", "voltage"),))
        wrong = (BoundParameter(ParameterSpec("other"), 0, 1, 0.5),)
        with pytest.raises(TestGenerationError):
            TestConfiguration(description, wrong,
                              DCProcedure("V", "other", (Probe("v", "o"),)),
                              ConstantBoxFunction([0.1]))

    def test_return_value_count_mismatch_rejected(self):
        description = TestConfigurationDescription(
            name="cfg", macro_type="t", title="T",
            control_nodes=("in",), observe_nodes=("out",),
            stimulus_template="", parameters=("base",),
            return_values=(ReturnValueSpec("dv", "voltage"),
                           ReturnValueSpec("di", "current")))
        params = (BoundParameter(ParameterSpec("base"), 0, 1, 0.5),)
        with pytest.raises(TestGenerationError):
            TestConfiguration(description, params,
                              DCProcedure("V", "base", (Probe("v", "o"),)),
                              ConstantBoxFunction([0.1, 0.1]))

    def test_seed_test(self):
        config = make_config()
        test = config.seed_test()
        np.testing.assert_allclose(test.values, [2.0])

    def test_make_test_from_dict(self):
        config = make_config(2)
        test = config.make_test({"base": 1.0, "elev": 3.0})
        np.testing.assert_allclose(test.values, [1.0, 3.0])

    def test_return_kinds(self):
        assert make_config().return_kinds == ("voltage",)


class TestTest:
    def test_bounds_enforced(self):
        config = make_config()
        with pytest.raises(TestGenerationError):
            Test(config, np.array([99.0]))

    def test_shape_enforced(self):
        config = make_config(2)
        with pytest.raises(TestGenerationError):
            Test(config, np.array([1.0]))

    def test_str_mentions_values(self):
        config = make_config()
        assert "base=2" in str(config.seed_test())

    def test_as_dict(self):
        config = make_config(2)
        test = config.make_test([1.0, 2.0])
        assert test.as_dict() == {"base": 1.0, "elev": 2.0}
