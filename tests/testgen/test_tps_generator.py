"""Tests for tps-graphs and the generation algorithm (RC-ladder scale)."""

import numpy as np
import pytest

from repro.errors import TestGenerationError
from repro.faults import BridgingFault
from repro.testgen import (
    GenerationSettings,
    TpsGraph,
    classify_impact_regions,
    compute_tps_graph,
    generate_test_for_fault,
    generate_tests,
    optimum_drift,
    shape_correlation,
)


@pytest.fixture(scope="module")
def dc_graph(rc_macro):
    bench = rc_macro.testbench()
    fault = BridgingFault(node_a="vout", node_b="0", impact=10e3)
    return compute_tps_graph(bench.executor("dc-out"), fault,
                             points_per_axis=9)


class TestTpsGraph:
    def test_shape_1d(self, dc_graph):
        assert dc_graph.values.shape == (9,)
        assert dc_graph.param_names == ("level",)

    def test_min_and_argmin_consistent(self, dc_graph):
        i = int(np.argmin(dc_graph.values))
        assert dc_graph.min_value == dc_graph.values[i]
        assert dc_graph.argmin_params[0] == dc_graph.axes[0][i]

    def test_detection_fraction_in_unit_range(self, dc_graph):
        assert 0.0 <= dc_graph.detection_fraction <= 1.0

    def test_sensitivity_grows_with_stimulus(self, dc_graph):
        """A vout-gnd bridge diverts more current at higher drive."""
        assert dc_graph.values[-1] < dc_graph.values[1]

    def test_explicit_axes(self, rc_bench):
        fault = BridgingFault(node_a="vout", node_b="0", impact=10e3)
        graph = compute_tps_graph(rc_bench.executor("dc-out"), fault,
                                  axes=[np.array([1.0, 3.0, 5.0])])
        assert graph.values.shape == (3,)

    def test_axes_count_mismatch_raises(self, rc_bench):
        fault = BridgingFault(node_a="vout", node_b="0", impact=10e3)
        with pytest.raises(TestGenerationError):
            compute_tps_graph(rc_bench.executor("step-mean"), fault,
                              axes=[np.array([1.0])])

    def test_2d_graph(self, rc_bench):
        fault = BridgingFault(node_a="n1", node_b="vout", impact=1e3)
        graph = compute_tps_graph(rc_bench.executor("step-mean"), fault,
                                  points_per_axis=5)
        assert graph.values.shape == (5, 5)
        assert len(graph.argmin_params) == 2

    def test_values_shape_validated(self):
        with pytest.raises(TestGenerationError):
            TpsGraph(config_name="c", fault_id="f", impact=1.0,
                     param_names=("p",), axes=(np.arange(5.0),),
                     values=np.zeros(4))


class TestGraphComparison:
    def test_drift_zero_for_same_graph(self, dc_graph):
        assert optimum_drift(dc_graph, dc_graph) == 0.0

    def test_correlation_one_for_same_graph(self, dc_graph):
        assert shape_correlation(dc_graph, dc_graph) == pytest.approx(1.0)

    def test_different_parameters_rejected(self, rc_bench, dc_graph):
        fault = BridgingFault(node_a="n1", node_b="vout", impact=1e3)
        other = compute_tps_graph(rc_bench.executor("step-mean"), fault,
                                  points_per_axis=9)
        with pytest.raises(TestGenerationError):
            optimum_drift(dc_graph, other)

    def test_soft_region_classification(self, rc_macro):
        """Weak impacts stabilize: the last sweep entries come out soft."""
        bench = rc_macro.testbench()
        fault = BridgingFault(node_a="vout", node_b="0", impact=10e3)
        regions = classify_impact_regions(
            bench.executor("dc-out"), fault,
            impacts=[1e3, 1e4, 1e5, 1e6], points_per_axis=7)
        assert regions[-1].region == "terminal"
        assert regions[-2].region == "soft"
        # shape correlation between the two weakest graphs is high
        corr = shape_correlation(regions[-2].graph, regions[-1].graph)
        assert corr > 0.9


class TestGeneratorSingleFault:
    def test_detectable_fault_gets_test(self, rc_macro):
        bench = rc_macro.testbench()
        fault = BridgingFault(node_a="vout", node_b="0", impact=10e3)
        generated = generate_test_for_fault(bench, fault)
        assert generated.test is not None
        assert generated.detected_at_dictionary
        assert not generated.undetectable
        assert generated.sensitivity_at_critical < 0.0

    def test_critical_impact_weaker_than_dictionary(self, rc_macro):
        """A strongly detected fault is weakened during adaptation."""
        bench = rc_macro.testbench()
        fault = BridgingFault(node_a="vout", node_b="0", impact=10e3)
        generated = generate_test_for_fault(bench, fault)
        assert generated.critical_impact >= fault.impact

    def test_stiff_node_fault_undetectable(self, rc_macro):
        """vin is driven by an ideal source: a vin-gnd bridge changes
        nothing observable -> reported undetectable, not crashed."""
        bench = rc_macro.testbench()
        fault = BridgingFault(node_a="vin", node_b="0", impact=10e3)
        generated = generate_test_for_fault(bench, fault)
        assert generated.undetectable
        assert generated.test is None
        assert generated.config_name == "<undetectable>"

    def test_per_config_summaries_present(self, rc_macro):
        bench = rc_macro.testbench()
        fault = BridgingFault(node_a="vout", node_b="0", impact=10e3)
        generated = generate_test_for_fault(bench, fault)
        assert {c.config_name for c in generated.per_config} == \
            {"dc-out", "step-mean"}
        assert all(c.nfev > 0 for c in generated.per_config)

    def test_simulation_accounting(self, rc_macro):
        bench = rc_macro.testbench()
        fault = BridgingFault(node_a="vout", node_b="0", impact=10e3)
        generated = generate_test_for_fault(bench, fault)
        assert generated.n_simulations > 0


class TestGeneratorDictionary:
    def test_all_faults_get_entries(self, rc_generation):
        assert len(rc_generation.tests) == 6

    def test_distribution_counts_sum(self, rc_generation):
        table = rc_generation.distribution()
        total = sum(v for row in table.values() for v in row.values())
        assert total == 6

    def test_tests_for_config_partition(self, rc_generation):
        names = set()
        count = 0
        for t in rc_generation.tests:
            names.add(t.config_name)
            count += 1
        listed = sum(len(rc_generation.tests_for_config(n)) for n in names)
        assert listed == count

    def test_json_roundtrip(self, rc_generation, rc_macro):
        text = rc_generation.to_json()
        from repro.testgen import GenerationResult
        rebuilt = GenerationResult.from_json(
            text, rc_macro.fault_dictionary(),
            rc_macro.test_configurations())
        assert len(rebuilt.tests) == len(rc_generation.tests)
        for a, b in zip(rebuilt.tests, rc_generation.tests):
            assert a.fault.fault_id == b.fault.fault_id
            assert a.config_name == b.config_name
            if b.test is not None:
                np.testing.assert_allclose(a.test.values, b.test.values)

    def test_parallel_matches_serial(self, rc_macro, rc_generation):
        parallel = generate_tests(
            rc_macro.circuit, rc_macro.test_configurations(),
            rc_macro.fault_dictionary(), GenerationSettings(), n_jobs=2)
        for serial_t, parallel_t in zip(rc_generation.tests,
                                        parallel.tests):
            assert serial_t.fault.fault_id == parallel_t.fault.fault_id
            assert serial_t.config_name == parallel_t.config_name
            assert serial_t.critical_impact == pytest.approx(
                parallel_t.critical_impact)

    def test_settings_validation(self):
        with pytest.raises(TestGenerationError):
            GenerationSettings(soft_weaken_factor=1.0)
        with pytest.raises(TestGenerationError):
            GenerationSettings(adaptation_factor=1.0)


class TestNaiveMode:
    def test_naive_costs_more_simulations(self, rc_macro):
        """Re-optimizing at every impact level must burn more sims
        while agreeing on the winning configuration (soft region)."""
        fault = BridgingFault(node_a="vout", node_b="0", impact=10e3)
        bench_eff = rc_macro.testbench()
        efficient = generate_test_for_fault(
            bench_eff, fault, GenerationSettings())
        bench_naive = rc_macro.testbench()
        naive = generate_test_for_fault(
            bench_naive, fault,
            GenerationSettings(reoptimize_each_impact=True))
        assert naive.n_simulations > efficient.n_simulations
        assert naive.config_name == efficient.config_name
