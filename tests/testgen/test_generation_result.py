"""Tests for GenerationResult containers and summaries."""

import numpy as np
import pytest

from repro.testgen import GenerationResult, GenerationSettings


class TestDistribution:
    def test_counts_sum_to_fault_count(self, rc_generation):
        table = rc_generation.distribution()
        total = sum(v for row in table.values() for v in row.values())
        assert total == len(rc_generation.tests)

    def test_undetectable_bucket_present(self, rc_generation):
        table = rc_generation.distribution()
        assert "<undetectable>" in table
        assert table["<undetectable>"]["bridge"] >= 1

    def test_n_detected_consistent(self, rc_generation):
        assert rc_generation.n_detected == sum(
            1 for t in rc_generation.tests if t.test is not None)

    def test_undetectable_faults_listed(self, rc_generation):
        ids = {f.fault_id for f in rc_generation.undetectable_faults()}
        assert "bridge:0:vin" in ids


class TestSerialization:
    def test_json_preserves_flags(self, rc_generation, rc_macro):
        rebuilt = GenerationResult.from_json(
            rc_generation.to_json(), rc_macro.fault_dictionary(),
            rc_macro.test_configurations())
        for a, b in zip(rebuilt.tests, rc_generation.tests):
            assert a.undetectable == b.undetectable
            assert a.detected_at_dictionary == b.detected_at_dictionary
            assert a.required_impact_increase == b.required_impact_increase

    def test_json_preserves_per_config(self, rc_generation, rc_macro):
        rebuilt = GenerationResult.from_json(
            rc_generation.to_json(), rc_macro.fault_dictionary(),
            rc_macro.test_configurations())
        for a, b in zip(rebuilt.tests, rc_generation.tests):
            assert len(a.per_config) == len(b.per_config)
            for ca, cb in zip(a.per_config, b.per_config):
                assert ca.config_name == cb.config_name
                np.testing.assert_allclose(ca.params, cb.params)
                assert ca.nfev == cb.nfev

    def test_json_preserves_totals(self, rc_generation, rc_macro):
        rebuilt = GenerationResult.from_json(
            rc_generation.to_json(), rc_macro.fault_dictionary(),
            rc_macro.test_configurations())
        assert rebuilt.total_simulations == \
            rc_generation.total_simulations
        assert rebuilt.circuit_name == rc_generation.circuit_name


class TestGeneratedTest:
    def test_config_name_for_undetectable(self, rc_generation):
        undetectable = [t for t in rc_generation.tests if t.undetectable]
        assert undetectable
        assert undetectable[0].config_name == "<undetectable>"

    def test_adaptation_rounds_positive(self, rc_generation):
        assert all(t.adaptation_rounds >= 1 for t in rc_generation.tests)

    def test_per_config_covers_all_configurations(self, rc_generation):
        for t in rc_generation.tests:
            assert {c.config_name for c in t.per_config} == \
                {"dc-out", "step-mean"}


class TestSettings:
    def test_defaults_reasonable(self):
        settings = GenerationSettings()
        assert settings.soft_weaken_factor > 1.0
        assert not settings.reoptimize_each_impact

    def test_frozen(self):
        with pytest.raises(AttributeError):
            GenerationSettings().brent_evals = 5
