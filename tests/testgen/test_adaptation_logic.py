"""Precision tests of the impact-adaptation logic with a synthetic macro.

The RC-ladder tests exercise the generator against a real simulator; here
we build a *synthetic* testbench whose sensitivity behaviour is an exact
analytic function of the fault impact, so the adaptation loop's
convergence properties can be asserted precisely:

* the returned critical impact brackets the analytic crossover point;
* exactly-one-detector termination picks the analytically stronger
  configuration;
* undetectable faults strengthen to the bound and are reported;
* faults detectable only above dictionary impact set the
  ``required_impact_increase`` flag.

The synthetic macro routes a fault's impact parameter into the circuit
as a bridge resistor across the output of a linear divider, so the
deviation (and hence S) is a closed-form function of impact.
"""

import numpy as np
import pytest

from repro.circuit import CircuitBuilder
from repro.faults import BridgingFault
from repro.macros import Macro
from repro.testgen import (
    BoundParameter,
    DCProcedure,
    GenerationSettings,
    MacroTestbench,
    ParameterSpec,
    Probe,
    ReturnValueSpec,
    TestConfiguration,
    TestConfigurationDescription,
    generate_test_for_fault,
)
from repro.tolerance import ConstantBoxFunction


class DividerMacro(Macro):
    """1 V source, R1=R2=1k divider; the DUT of the synthetic tests.

    A bridge ``out``-``0`` with resistance ``R`` moves the output from
    0.5 V to ``(R || 1k) / (1k + R || 1k)``; the deviation is a clean
    monotone function of the impact parameter.
    """

    name = "divider"
    macro_type = "synthetic-divider"
    STANDARD_NODES = ("in", "out", "0")

    def build_circuit(self):
        return (CircuitBuilder(self.name)
                .voltage_source("VIN", "in", "0", 1.0)
                .resistor("R1", "in", "out", 1e3)
                .resistor("R2", "out", "0", 1e3)
                .build())

    @property
    def standard_nodes(self):
        return self.STANDARD_NODES

    def test_configurations(self, box_mode="fast", cache_dir=None):
        raise NotImplementedError("tests build configurations directly")


def divider_deviation(impact: float) -> float:
    """Analytic output shift of the bridged divider (negative)."""
    parallel = impact * 1e3 / (impact + 1e3)
    return parallel / (1e3 + parallel) - 0.5


def make_config(name: str, box: float, macro: DividerMacro):
    """A DC configuration detecting |deviation| > box + equipment term."""
    description = TestConfigurationDescription(
        name=name, macro_type=macro.macro_type, title=name,
        control_nodes=("in",), observe_nodes=("out",),
        stimulus_template="dc(level) at in", parameters=("level",),
        return_values=(ReturnValueSpec("dv", "voltage"),))
    parameters = (BoundParameter(ParameterSpec("level", "V"),
                                 0.999, 1.001, 1.0),)
    procedure = DCProcedure("VIN", "level", (Probe("v", "out"),))
    return TestConfiguration(description, parameters, procedure,
                             ConstantBoxFunction([box]), macro.equipment)


@pytest.fixture()
def macro():
    return DividerMacro()


def total_box(config, bench, vector=(1.0,)):
    """Box half-width including the equipment term the executor adds."""
    return float(bench.executor(config.name).boxes(np.array(vector))[0])


class TestCriticalImpactPrecision:
    def test_critical_impact_brackets_crossover(self, macro):
        """With two boxes 10 mV and 40 mV, the tight-box configuration
        must win, and the critical impact must land where only it still
        detects: between the 40 mV and 10 mV crossover impacts."""
        tight = make_config("tight", 0.010, macro)
        loose = make_config("loose", 0.040, macro)
        bench = MacroTestbench(macro.circuit, [tight, loose],
                               macro.options)

        fault = BridgingFault(node_a="out", node_b="0", impact=10e3)
        generated = generate_test_for_fault(
            bench, fault, GenerationSettings(
                adaptation_factor=4.0,
                adaptation_shrink_threshold=1.01))

        assert generated.config_name == "tight"
        # Analytic crossovers |deviation(R)| = box_total.
        def crossover(box_total):
            # |dev| decreasing in R; bisect.
            lo, hi = 1e3, 1e9
            for _ in range(200):
                mid = np.sqrt(lo * hi)
                if abs(divider_deviation(mid)) > box_total:
                    lo = mid
                else:
                    hi = mid
            return lo
        loose_edge = crossover(total_box(loose, bench))
        tight_edge = crossover(total_box(tight, bench))
        assert loose_edge < tight_edge
        assert loose_edge <= generated.critical_impact <= tight_edge

    def test_sensitivity_at_critical_is_negative(self, macro):
        tight = make_config("tight", 0.010, macro)
        loose = make_config("loose", 0.040, macro)
        bench = MacroTestbench(macro.circuit, [tight, loose],
                               macro.options)
        fault = BridgingFault(node_a="out", node_b="0", impact=10e3)
        generated = generate_test_for_fault(bench, fault)
        assert generated.sensitivity_at_critical < 0.0


class TestUndetectable:
    def test_insensitive_everywhere_reports_undetectable(self, macro):
        """A bridge across the stiff input node changes nothing; the
        adaptation must strengthen to the bound and give up."""
        config = make_config("only", 0.010, macro)
        bench = MacroTestbench(macro.circuit, [config], macro.options)
        fault = BridgingFault(node_a="in", node_b="0", impact=10e3)
        generated = generate_test_for_fault(bench, fault)
        assert generated.undetectable
        assert generated.test is None
        assert not generated.detected_at_dictionary

    def test_huge_box_makes_fault_undetectable(self, macro):
        """Even a hard short hides inside a 1 V tolerance box."""
        config = make_config("blind", 1.0, macro)
        bench = MacroTestbench(macro.circuit, [config], macro.options)
        fault = BridgingFault(node_a="out", node_b="0", impact=10e3)
        generated = generate_test_for_fault(bench, fault)
        assert generated.undetectable


class TestImpactIncrease:
    def test_weak_dictionary_impact_sets_flag(self, macro):
        """Dictionary impact too weak to detect, but strengthening
        finds the defect: required_impact_increase must be set."""
        config = make_config("cfg", 0.010, macro)
        bench = MacroTestbench(macro.circuit, [config], macro.options)
        # At 1 Mohm the divider shifts ~0.25 mV: inside the box.
        fault = BridgingFault(node_a="out", node_b="0", impact=1e6)
        generated = generate_test_for_fault(bench, fault)
        assert not generated.detected_at_dictionary
        assert generated.required_impact_increase
        assert generated.test is not None
        assert generated.critical_impact < 1e6

    def test_detected_at_dictionary_never_sets_flag(self, macro):
        config = make_config("cfg", 0.010, macro)
        bench = MacroTestbench(macro.circuit, [config], macro.options)
        fault = BridgingFault(node_a="out", node_b="0", impact=10e3)
        generated = generate_test_for_fault(bench, fault)
        assert generated.detected_at_dictionary
        assert not generated.required_impact_increase


class TestTieBreaking:
    def test_identical_configs_resolve_to_most_sensitive(self, macro):
        """Two equal configurations never leave the >1 detector state;
        the oscillation fallback must pick the (equal) minimum without
        crashing and still report a usable test."""
        a = make_config("a", 0.010, macro)
        b = make_config("b", 0.010, macro)
        bench = MacroTestbench(macro.circuit, [a, b], macro.options)
        fault = BridgingFault(node_a="out", node_b="0", impact=10e3)
        generated = generate_test_for_fault(bench, fault)
        assert generated.test is not None
        assert generated.config_name in ("a", "b")
        assert generated.sensitivity_at_critical < 0.0
