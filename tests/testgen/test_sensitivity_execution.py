"""Tests for the sensitivity cost function and the execution engine."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import TestGenerationError
from repro.faults import BridgingFault
from repro.testgen import (
    MacroTestbench,
    sensitivity,
    sensitivity_components,
)
from repro.testgen.sensitivity import SensitivityReport


class TestSensitivityMath:
    def test_zero_deviation_is_one(self):
        assert sensitivity(np.array([0.0]), np.array([0.5])) == 1.0

    def test_deviation_at_box_edge_is_zero(self):
        assert sensitivity(np.array([0.5]), np.array([0.5])) == \
            pytest.approx(0.0)

    def test_detection_is_negative(self):
        assert sensitivity(np.array([1.0]), np.array([0.5])) < 0.0

    def test_min_over_return_values(self):
        s = sensitivity(np.array([0.1, 0.9]), np.array([1.0, 1.0]))
        assert s == pytest.approx(0.1)  # 1 - 0.9

    def test_sign_of_deviation_irrelevant(self):
        pos = sensitivity(np.array([0.3]), np.array([1.0]))
        neg = sensitivity(np.array([-0.3]), np.array([1.0]))
        assert pos == neg

    def test_rejects_non_positive_box(self):
        with pytest.raises(TestGenerationError):
            sensitivity(np.array([0.1]), np.array([0.0]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(TestGenerationError):
            sensitivity_components(np.zeros(2), np.ones(3))

    @given(st.floats(-100, 100), st.floats(0.01, 100))
    def test_detection_iff_outside_box(self, deviation, box):
        s = sensitivity(np.array([deviation]), np.array([box]))
        assert (s < 0.0) == (abs(deviation) > box)

    @given(st.floats(0.0, 10.0), st.floats(0.01, 10.0))
    def test_bounded_above_by_one(self, deviation, box):
        assert sensitivity(np.array([deviation]),
                           np.array([box])) <= 1.0

    def test_report_detected_flag(self):
        report = SensitivityReport(
            value=-0.5, components=np.array([-0.5]),
            deviations=np.array([1.0]), boxes=np.array([0.5]),
            params=np.array([1.0]))
        assert report.detected
        assert "DETECTED" in repr(report)


class TestExecutor:
    def test_nominal_cache_hit(self, rc_bench):
        executor = rc_bench.executor("dc-out")
        executor.stats.nominal_simulations = 0
        executor.stats.nominal_cache_hits = 0
        executor.nominal_raw([2.0])
        hits_before = executor.stats.nominal_cache_hits
        executor.nominal_raw([2.0])
        assert executor.stats.nominal_cache_hits == hits_before + 1

    def test_sensitivity_of_healthy_circuit_is_one(self, rc_macro):
        """The nominal circuit 'faulted' with a no-op has S = 1."""
        bench = rc_macro.testbench()
        executor = bench.executor("dc-out")
        # A very weak bridge across vin-n1 (1 Gohm) ~ no-op.
        fault = BridgingFault(node_a="vin", node_b="n1", impact=1e9)
        report = executor.sensitivity(fault, [2.0])
        assert report.value == pytest.approx(1.0, abs=0.05)

    def test_hard_bridge_detected(self, rc_macro):
        bench = rc_macro.testbench()
        executor = bench.executor("dc-out")
        fault = BridgingFault(node_a="vout", node_b="0", impact=10.0)
        report = executor.sensitivity(fault, [3.0])
        assert report.detected

    def test_vector_clipped_into_bounds(self, rc_bench):
        executor = rc_bench.executor("dc-out")
        fault = BridgingFault(node_a="vout", node_b="0", impact=100.0)
        report = executor.sensitivity(fault, [99.0])  # above 5 V bound
        assert report.params[0] == pytest.approx(5.0)

    def test_boxes_include_equipment_term(self, rc_bench):
        executor = rc_bench.executor("dc-out")
        boxes = executor.boxes([2.0])
        # fast box is 0.12; equipment adds 2 * (1 mV + 0.1 %).
        assert boxes[0] > 0.12

    def test_evaluate_test_config_ownership(self, rc_bench):
        config_dc = rc_bench.configuration("dc-out")
        config_step = rc_bench.configuration("step-mean")
        fault = BridgingFault(node_a="vout", node_b="0", impact=100.0)
        test = config_dc.seed_test()
        report = rc_bench.executor("dc-out").evaluate_test(fault, test)
        assert isinstance(report.value, float)
        with pytest.raises(TestGenerationError):
            rc_bench.executor("step-mean").evaluate_test(fault, test)


class TestFaultyCircuitCache:
    def test_pinhole_positions_not_conflated(self, iv_bench):
        """Regression: two pinholes differing only in position must give
        different sensitivities (the faulty-circuit cache once keyed on
        fault_id+impact only)."""
        from repro.faults import PinholeFault
        executor = iv_bench.executor("dc-output")
        near = PinholeFault(device="M6", impact=50e3, position=0.1)
        deep = PinholeFault(device="M6", impact=50e3, position=0.5)
        s_near = executor.sensitivity(near, [20e-6]).value
        s_deep = executor.sensitivity(deep, [20e-6]).value
        assert s_near != s_deep

    def test_drain_proximal_pinhole_less_detectable(self, iv_bench):
        """The Eckersall observation the paper cites with Fig. 7."""
        from repro.faults import PinholeFault
        executor = iv_bench.executor("dc-output")
        near = PinholeFault(device="M6", impact=50e3, position=0.1)
        deep = PinholeFault(device="M6", impact=50e3, position=0.5)
        assert executor.sensitivity(near, [20e-6]).value > \
            executor.sensitivity(deep, [20e-6]).value


class TestTestbench:
    def test_configuration_names(self, rc_bench):
        assert rc_bench.configuration_names == ("dc-out", "step-mean")

    def test_unknown_configuration_raises(self, rc_bench):
        with pytest.raises(TestGenerationError):
            rc_bench.executor("nope")

    def test_duplicate_configurations_rejected(self, rc_macro):
        configs = rc_macro.test_configurations()
        with pytest.raises(TestGenerationError):
            MacroTestbench(rc_macro.circuit, configs + configs[:1])

    def test_stats_aggregate(self, rc_macro):
        bench = rc_macro.testbench()
        fault = BridgingFault(node_a="vout", node_b="0", impact=100.0)
        bench.sensitivity(fault, "dc-out", [2.0])
        bench.sensitivity(fault, "step-mean", [0.5, 2.0])
        assert bench.stats.total_simulations >= 4  # 2 nominal + 2 faulty
