"""Overlay-vs-legacy equivalence suite and executor cache behaviour.

The paper's economy argument only holds if the cheap overlay path is
*exactly* the simulation the legacy copy+recompile path would have run.
These tests prove it on the full IV-converter fault dictionary for the DC
procedure and on representative subsets for the transient and AC
procedures (both solver paths converge independently, so equality is
asserted within solver tolerance).
"""

import numpy as np
import pytest

from repro.analysis import SimulationEngine
from repro.errors import AnalysisError, TestGenerationError
from repro.faults import BridgingFault, exhaustive_fault_dictionary
from repro.testgen.execution import (
    ExecutorStats,
    MacroTestbench,
    TestExecutor as Executor,  # alias dodges pytest class collection
)
from repro.testgen.procedures import (
    ACGainProcedure,
    DCProcedure,
    Probe,
    SineTHDProcedure,
    StepProcedure,
)

#: Cross-path agreement tolerances: both paths converge independently to
#: within SimOptions.reltol/vntol, so allow a few orders above those.
RTOL = 5e-3
ATOL = 5e-6


@pytest.fixture(scope="module")
def iv_faults(iv_macro):
    """The paper's exhaustive 55-fault dictionary (module-scoped)."""
    return exhaustive_fault_dictionary(iv_macro.circuit,
                                       nodes=iv_macro.standard_nodes)


def _both_paths(engine, procedure, params, fault):
    """Run the legacy and overlay paths, tolerating convergence failures."""
    try:
        legacy = engine.simulate_legacy(procedure, params, fault)
    except AnalysisError:
        legacy = None
    try:
        overlay = engine.simulate_fault(procedure, params, fault)
    except AnalysisError:
        overlay = None
    return legacy, overlay


def _assert_equivalent(engine, procedure, params, faults):
    mismatches = []
    for fault in faults:
        legacy, overlay = _both_paths(engine, procedure, params, fault)
        if legacy is None:
            # The legacy path could not even simulate this defect; the
            # executor treats that as maximal deviation either way, so
            # there is nothing to compare (the overlay path starting
            # warm may legitimately succeed where cold-start failed).
            continue
        if overlay is None or not np.allclose(legacy, overlay,
                                              rtol=RTOL, atol=ATOL):
            mismatches.append((fault.fault_id, legacy, overlay))
    assert not mismatches, f"overlay != legacy for: {mismatches}"


class TestDCEquivalence:
    def test_full_dictionary(self, iv_macro, iv_faults):
        """All 55 dictionary faults, both DC observables at once."""
        engine = SimulationEngine(iv_macro.circuit, iv_macro.options)
        procedure = DCProcedure("IIN", "base",
                                (Probe("v", "vout"), Probe("i", "VDD")))
        _assert_equivalent(engine, procedure, {"base": 20e-6}, iv_faults)
        assert engine.stats.overlay_simulations > 0
        assert len(iv_faults) == 55

    def test_steady_state_needs_no_recompilation(self, iv_macro, iv_faults):
        """Second sweep over the dictionary compiles nothing at all."""
        engine = SimulationEngine(iv_macro.circuit, iv_macro.options)
        procedure = DCProcedure("IIN", "base", (Probe("v", "vout"),))
        for fault in iv_faults:
            try:
                engine.simulate_fault(procedure, {"base": 20e-6}, fault)
            except AnalysisError:
                pass
        compilations_after_warmup = engine.stats.compilations
        for fault in iv_faults:
            try:
                engine.simulate_fault(procedure, {"base": 21e-6}, fault)
            except AnalysisError:
                pass
        assert engine.stats.compilations == compilations_after_warmup
        assert engine.stats.legacy_simulations == 0


class TestTransientEquivalence:
    def test_step_subset(self, iv_macro, iv_faults):
        """Pinholes + a bridge sample under a short step transient."""
        engine = SimulationEngine(iv_macro.circuit, iv_macro.options)
        procedure = StepProcedure(
            "IIN", "vout", base_param="base", elev_param="elev",
            mode="max", sample_rate=20e6, test_time=0.5e-6,
            t_step=10e-9, slew_rate=800.0)
        params = {"base": 5e-6, "elev": 20e-6}
        subset = list(iv_faults.of_type("pinhole")) \
            + list(iv_faults.of_type("bridge"))[::5]
        _assert_equivalent(engine, procedure, params, subset)

    def test_thd_sample(self, iv_macro, iv_faults):
        """A short THD measurement on a few representative faults."""
        engine = SimulationEngine(iv_macro.circuit, iv_macro.options)
        procedure = SineTHDProcedure(
            "IIN", "vout", dc_param="iin_dc", freq_param="freq",
            samples_per_period=32, settle_periods=1, analysis_periods=1)
        params = {"iin_dc": 10e-6, "freq": 20e3}
        subset = (list(iv_faults.of_type("pinhole"))[:2]
                  + list(iv_faults.of_type("bridge"))[:3])
        _assert_equivalent(engine, procedure, params, subset)


class TestACEquivalence:
    def test_ac_gain_subset(self, iv_macro, iv_faults):
        engine = SimulationEngine(iv_macro.circuit, iv_macro.options)
        procedure = ACGainProcedure("IIN", "vout", freq_param="freq",
                                    bias_param="bias")
        params = {"freq": 10e3, "bias": 20e-6}
        subset = (list(iv_faults.of_type("pinhole"))[:4]
                  + list(iv_faults.of_type("bridge"))[::4])
        _assert_equivalent(engine, procedure, params, subset)


class TestValidatedSensitivities:
    def test_sensitivity_through_validating_testbench(self, iv_macro):
        """End-to-end: a validating testbench raises on any divergence."""
        bench = MacroTestbench(
            iv_macro.circuit,
            iv_macro.test_configurations(box_mode="fast"),
            iv_macro.options, validate_overlay=True)
        fault = BridgingFault(node_a="n1", node_b="n2", impact=10e3)
        report = bench.sensitivity(fault, "dc-output", [20e-6])
        assert np.isfinite(report.value)
        stats = bench.engine_stats
        assert stats.validations >= 1
        assert stats.overlay_simulations >= 1

    def test_overlay_and_legacy_sensitivities_match(self, iv_macro):
        """Same S_f whether the executor overlays or copies+recompiles."""
        config = iv_macro.test_configurations(box_mode="fast")[0]
        fault = BridgingFault(node_a="vref", node_b="ntail", impact=10e3)
        overlay_exec = Executor(iv_macro.circuit, config,
                                iv_macro.options)
        s_overlay = overlay_exec.sensitivity(fault, [20e-6]).value

        legacy_exec = Executor(iv_macro.circuit, config,
                               iv_macro.options)
        legacy = legacy_exec.observed_raw(
            legacy_exec._faulty_circuit(fault), [20e-6])
        nominal = legacy_exec.nominal_raw([20e-6])
        deviations = config.procedure.deviations(nominal, legacy)
        boxes = legacy_exec.boxes([20e-6])
        from repro.testgen.sensitivity import sensitivity_components
        s_legacy = float(np.min(sensitivity_components(deviations, boxes)))
        assert s_overlay == pytest.approx(s_legacy, rel=1e-3, abs=1e-6)


class TestValidationPropagation:
    def test_validation_error_propagates_through_sensitivity(self, iv_macro):
        """A validate_overlay mismatch must surface, never be converted
        into a 'maximal deviation' detection (it reports an engine bug,
        not a circuit property)."""
        from repro.errors import OverlayValidationError

        class BrokenBridge(BridgingFault):
            def stamp_delta(self, compiled):
                (stamp,) = super().stamp_delta(compiled)
                return (type(stamp)(stamp.node_a, stamp.node_b,
                                    stamp.conductance * 100.0),)

        config = [c for c in iv_macro.test_configurations(box_mode="fast")
                  if c.name == "dc-supply-current"][0]
        executor = Executor(iv_macro.circuit, config, iv_macro.options,
                            validate_overlay=True)
        fault = BrokenBridge(node_a="vout", node_b="0", impact=50e3)
        with pytest.raises(OverlayValidationError):
            executor.sensitivity(fault, [20e-6])

    def test_prebuilt_engine_switched_into_validation(self, iv_macro):
        config = iv_macro.test_configurations(box_mode="fast")[0]
        engine = SimulationEngine(iv_macro.circuit, iv_macro.options)
        assert not engine.validate_overlay
        executor = Executor(iv_macro.circuit, config, iv_macro.options,
                            engine=engine, validate_overlay=True)
        fault = BridgingFault(node_a="n1", node_b="n2", impact=10e3)
        executor.sensitivity(fault, [20e-6])
        assert engine.validate_overlay
        assert engine.stats.validations >= 1

    def test_prebuilt_engine_for_wrong_circuit_rejected(self, iv_macro,
                                                        rc_macro):
        config = iv_macro.test_configurations(box_mode="fast")[0]
        foreign = SimulationEngine(rc_macro.circuit, rc_macro.options)
        with pytest.raises(TestGenerationError):
            Executor(iv_macro.circuit, config, iv_macro.options,
                     engine=foreign)

    def test_prebuilt_engine_with_mismatched_options_rejected(self,
                                                              iv_macro):
        from repro.analysis import SimOptions

        config = iv_macro.test_configurations(box_mode="fast")[0]
        engine = SimulationEngine(iv_macro.circuit, SimOptions(gmin=1e-10))
        with pytest.raises(TestGenerationError):
            Executor(iv_macro.circuit, config, iv_macro.options,
                     engine=engine)

    def test_warm_start_opt_out_runs_cold(self, iv_macro):
        engine = SimulationEngine(iv_macro.circuit, iv_macro.options,
                                  warm_start=False)
        procedure = DCProcedure("IIN", "base", (Probe("v", "vout"),))
        fault = BridgingFault(node_a="n1", node_b="n2", impact=10e3)
        first = engine.simulate_fault(procedure, {"base": 20e-6}, fault)
        second = engine.simulate_fault(procedure, {"base": 20e-6}, fault)
        assert np.allclose(first, second, rtol=1e-9, atol=1e-12)
        assert engine.stats.warm_start_hits == 0


class TestExecutorCaches:
    def test_nominal_lru_bounded_and_counted(self, rc_macro):
        config = rc_macro.test_configurations()[0]
        executor = Executor(rc_macro.circuit, config, rc_macro.options,
                            nominal_cache_size=2)
        for level in (1.0, 2.0, 3.0):
            executor.nominal_raw([level])
        assert executor.stats.nominal_cache_evictions == 1
        assert len(executor._nominal_cache) == 2
        # 1.0 was evicted (LRU); 3.0 is still warm.
        sims = executor.stats.nominal_simulations
        executor.nominal_raw([3.0])
        assert executor.stats.nominal_simulations == sims
        executor.nominal_raw([1.0])
        assert executor.stats.nominal_simulations == sims + 1

    def test_nominal_lru_recency_updated_on_hit(self, rc_macro):
        config = rc_macro.test_configurations()[0]
        executor = Executor(rc_macro.circuit, config, rc_macro.options,
                            nominal_cache_size=2)
        executor.nominal_raw([1.0])
        executor.nominal_raw([2.0])
        executor.nominal_raw([1.0])  # refresh 1.0 -> 2.0 becomes LRU
        executor.nominal_raw([3.0])  # evicts 2.0
        sims = executor.stats.nominal_simulations
        executor.nominal_raw([1.0])
        assert executor.stats.nominal_simulations == sims

    def test_faulty_circuit_lru(self, rc_macro):
        config = rc_macro.test_configurations()[0]
        executor = Executor(rc_macro.circuit, config, rc_macro.options,
                            faulty_cache_size=2)
        faults = [BridgingFault(node_a="vin", node_b="vout", impact=r)
                  for r in (1e3, 2e3, 3e3)]
        for fault in faults:
            executor._faulty_circuit(fault)
        assert executor.stats.faulty_cache_evictions == 1
        assert len(executor._faulty_cache) == 2
        first = executor._faulty_circuit(faults[2])
        assert executor._faulty_circuit(faults[2]) is first

    def test_stats_merge_includes_new_fields(self):
        a = ExecutorStats(nominal_cache_evictions=2, overlay_simulations=5)
        b = ExecutorStats(nominal_cache_evictions=1, faulty_cache_evictions=4)
        merged = a.merged(b)
        assert merged.nominal_cache_evictions == 3
        assert merged.faulty_cache_evictions == 4
        assert merged.overlay_simulations == 5


class TestEvaluateTestIdentity:
    def test_rebuilt_configuration_with_same_name_accepted(self, rc_macro):
        """A fresh-but-equivalent configuration object must be accepted
        (workers unpickle configurations; identity is the *name*)."""
        bench = rc_macro.testbench()
        rebuilt = rc_macro.test_configurations()[0]
        assert rebuilt is not bench.configuration("dc-out")
        test = rebuilt.seed_test()
        fault = BridgingFault(node_a="vout", node_b="0", impact=100.0)
        report = bench.executor("dc-out").evaluate_test(fault, test)
        assert np.isfinite(report.value)

    def test_wrong_configuration_name_rejected(self, rc_macro):
        bench = rc_macro.testbench()
        fault = BridgingFault(node_a="vout", node_b="0", impact=100.0)
        test = bench.configuration("dc-out").seed_test()
        with pytest.raises(TestGenerationError):
            bench.executor("step-mean").evaluate_test(fault, test)
