"""Tests for grouping, collapse and coverage (RC-ladder scale)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.compaction import (
    CompactionSettings,
    collapse_test_set,
    evaluate_coverage,
    farthest_pair_split,
    single_linkage_groups,
)
from repro.errors import CompactionError


class TestSingleLinkage:
    def test_empty(self):
        assert single_linkage_groups(np.zeros((0, 2)), 0.1) == []

    def test_all_isolated(self):
        points = np.array([[0.0], [1.0], [2.0]])
        groups = single_linkage_groups(points, 0.5)
        assert groups == [[0], [1], [2]]

    def test_all_merged(self):
        points = np.array([[0.0], [0.1], [0.2]])
        groups = single_linkage_groups(points, 0.15)
        assert groups == [[0, 1, 2]]

    def test_chain_merging(self):
        """Single linkage: a...b...c merge even if a-c exceed threshold."""
        points = np.array([[0.0], [0.4], [0.8]])
        groups = single_linkage_groups(points, 0.45)
        assert groups == [[0, 1, 2]]

    def test_two_clusters(self):
        points = np.array([[0.0, 0.0], [0.1, 0.0], [5.0, 5.0], [5.1, 5.0]])
        groups = single_linkage_groups(points, 0.5)
        assert groups == [[0, 1], [2, 3]]

    def test_rejects_negative_threshold(self):
        with pytest.raises(CompactionError):
            single_linkage_groups(np.zeros((2, 1)), -1.0)

    @settings(max_examples=30)
    @given(st.lists(st.tuples(st.floats(-5, 5), st.floats(-5, 5)),
                    min_size=1, max_size=20),
           st.floats(0.0, 3.0))
    def test_partition_property(self, point_list, threshold):
        """Groups form a partition: every index exactly once."""
        points = np.array(point_list)
        groups = single_linkage_groups(points, threshold)
        flat = sorted(i for g in groups for i in g)
        assert flat == list(range(len(points)))

    @settings(max_examples=30)
    @given(st.lists(st.tuples(
        st.floats(-5, 5).map(lambda v: round(v, 6)),
        st.floats(-5, 5).map(lambda v: round(v, 6))),
        min_size=2, max_size=20))
    def test_zero_threshold_keeps_distinct_points_apart(self, point_list):
        """At threshold 0 only exact duplicates merge.

        Coordinates are rounded to avoid subnormal distances whose
        squares underflow to exactly zero.
        """
        points = np.array(point_list)
        unique = len({tuple(p) for p in point_list})
        groups = single_linkage_groups(points, 0.0)
        assert len(groups) == unique
        for group in groups:
            first = points[group[0]]
            for index in group[1:]:
                np.testing.assert_array_equal(points[index], first)


class TestFarthestPairSplit:
    def test_splits_two_obvious_clusters(self):
        points = np.array([[0.0], [0.1], [5.0], [5.1]])
        left, right = farthest_pair_split(points, [0, 1, 2, 3])
        assert sorted(map(sorted, (left, right))) == [[0, 1], [2, 3]]

    def test_rejects_singleton(self):
        with pytest.raises(CompactionError):
            farthest_pair_split(np.zeros((2, 1)), [0])

    def test_identical_points_split_arbitrarily(self):
        points = np.zeros((4, 2))
        left, right = farthest_pair_split(points, [0, 1, 2, 3])
        assert len(left) + len(right) == 4
        assert left and right


class TestCollapse:
    def test_compact_set_smaller(self, rc_generation, rc_bench):
        result = collapse_test_set(rc_generation, rc_bench,
                                   CompactionSettings(delta=0.1))
        assert 0 < result.n_compact_tests <= result.n_original_tests

    def test_groups_partition_detectable_faults(self, rc_generation,
                                                rc_bench):
        result = collapse_test_set(rc_generation, rc_bench)
        grouped = sorted(fid for g in result.groups for fid in g.fault_ids)
        detectable = sorted(t.fault.fault_id for t in rc_generation.tests
                            if t.test is not None)
        assert grouped == detectable

    def test_undetectable_listed(self, rc_generation, rc_bench):
        result = collapse_test_set(rc_generation, rc_bench)
        assert "bridge:0:vin" in result.undetectable_fault_ids

    def test_delta_zero_collapses_least(self, rc_generation, rc_bench):
        strict = collapse_test_set(rc_generation, rc_bench,
                                   CompactionSettings(delta=0.0))
        loose = collapse_test_set(rc_generation, rc_bench,
                                  CompactionSettings(delta=0.5))
        assert strict.n_compact_tests >= loose.n_compact_tests

    def test_zero_radius_merges_only_identical_params(self, rc_generation,
                                                      rc_bench):
        result = collapse_test_set(
            rc_generation, rc_bench,
            CompactionSettings(delta=0.1, grouping_radius=0.0))
        for group in result.groups:
            first = group.members[0].test.values
            for member in group.members[1:]:
                np.testing.assert_allclose(member.test.values, first)

    def test_screenings_satisfy_delta(self, rc_generation, rc_bench):
        delta = 0.1
        result = collapse_test_set(rc_generation, rc_bench,
                                   CompactionSettings(delta=delta))
        for group in result.groups:
            if group.size == 1:
                continue
            for s in group.screenings:
                limit = s.sensitivity_optimal + delta * (
                    1.0 - s.sensitivity_optimal)
                assert s.sensitivity_collapsed <= limit + 1e-9

    def test_collapsed_params_inside_bounds(self, rc_generation, rc_bench):
        result = collapse_test_set(rc_generation, rc_bench)
        for group in result.groups:
            config = rc_bench.configuration(group.config_name)
            bounds = config.parameters.bounds
            assert np.all(group.collapsed_test.values >= bounds[:, 0])
            assert np.all(group.collapsed_test.values <= bounds[:, 1])

    def test_compaction_ratio(self, rc_generation, rc_bench):
        result = collapse_test_set(rc_generation, rc_bench)
        assert result.compaction_ratio == pytest.approx(
            result.n_original_tests / result.n_compact_tests)

    def test_settings_validation(self):
        with pytest.raises(CompactionError):
            CompactionSettings(delta=1.5)
        with pytest.raises(CompactionError):
            CompactionSettings(grouping_radius=-0.1)


class TestCoverage:
    def test_coverage_of_original_tests(self, rc_generation, rc_bench):
        """Faults detected at dictionary impact stay covered by their
        own optimal tests."""
        detected = [t for t in rc_generation.tests
                    if t.detected_at_dictionary]
        report = evaluate_coverage(
            rc_bench, [t.fault for t in detected],
            [t.test for t in detected])
        assert report.fraction == 1.0

    def test_uncovered_lists_misses(self, rc_generation, rc_bench):
        """Tests that only fire above dictionary impact are misses."""
        hard = [t for t in rc_generation.tests
                if t.required_impact_increase]
        if not hard:
            pytest.skip("no impact-increase faults in this run")
        report = evaluate_coverage(
            rc_bench, [t.fault for t in hard],
            [t.test for t in hard if t.test is not None])
        assert report.fraction < 1.0
        assert len(report.uncovered()) >= 1

    def test_by_type_histogram(self, rc_generation, rc_bench):
        detected = [t for t in rc_generation.tests if t.test is not None]
        report = evaluate_coverage(
            rc_bench, [t.fault for t in detected],
            [t.test for t in detected])
        covered, total = report.by_type()["bridge"]
        assert total == len(detected)
        assert covered == report.n_covered

    def test_stop_at_first_vs_full_enumeration(self, rc_generation,
                                               rc_bench):
        detected = [t for t in rc_generation.tests
                    if t.detected_at_dictionary]
        tests = [t.test for t in detected]
        fast = evaluate_coverage(rc_bench, [detected[0].fault], tests,
                                 stop_at_first=True)
        full = evaluate_coverage(rc_bench, [detected[0].fault], tests,
                                 stop_at_first=False)
        assert fast.entries[0].covered == full.entries[0].covered
        assert len(full.entries[0].detecting_tests) >= len(
            fast.entries[0].detecting_tests)
