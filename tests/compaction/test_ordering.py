"""Tests for the detection matrix and greedy test ordering."""

import numpy as np
import pytest

from repro.compaction import (
    DetectionMatrix,
    detection_matrix,
    greedy_order,
)
from repro.errors import CompactionError


def make_matrix(detects, sensitivities=None, n_tests=None):
    detects = np.asarray(detects, dtype=bool)
    if sensitivities is None:
        sensitivities = np.where(detects, -1.0, 0.5)
    fault_ids = tuple(f"f{i}" for i in range(detects.shape[0]))
    tests = tuple(f"t{j}" for j in range(detects.shape[1]))  # stubs
    return DetectionMatrix(fault_ids=fault_ids, tests=tests,
                           detects=detects,
                           sensitivities=np.asarray(sensitivities, float))


class TestGreedyOrder:
    def test_picks_biggest_detector_first(self):
        matrix = make_matrix([
            [True, False],
            [True, False],
            [False, True],
        ])
        plan = greedy_order(matrix)
        assert plan.order[0] == 0  # detects 2 of 3 faults
        assert plan.cumulative_coverage[0] == pytest.approx(2 / 3)
        assert plan.final_coverage == pytest.approx(1.0)

    def test_weighted_priority_flips_order(self):
        matrix = make_matrix([
            [True, False],
            [False, True],
        ])
        plan = greedy_order(matrix, weights={"f0": 1.0, "f1": 10.0})
        assert plan.order[0] == 1  # the heavy fault's detector first

    def test_redundant_tests_appended_last(self):
        matrix = make_matrix([
            [True, True],
            [True, False],
        ])
        plan = greedy_order(matrix)
        assert plan.order == (0, 1)
        assert plan.incremental_coverage[1] == 0.0

    def test_cumulative_curve_monotone(self):
        rng = np.random.default_rng(5)
        matrix = make_matrix(rng.uniform(size=(12, 6)) > 0.6)
        plan = greedy_order(matrix)
        curve = np.array(plan.cumulative_coverage)
        assert np.all(np.diff(curve) >= -1e-12)

    def test_greedy_increments_sum_to_final(self):
        rng = np.random.default_rng(7)
        matrix = make_matrix(rng.uniform(size=(10, 5)) > 0.5)
        plan = greedy_order(matrix)
        assert sum(plan.incremental_coverage) == pytest.approx(
            plan.final_coverage)

    def test_tests_for_coverage(self):
        matrix = make_matrix([
            [True, False],
            [False, True],
        ])
        plan = greedy_order(matrix)
        assert plan.tests_for_coverage(0.5) == 1
        assert plan.tests_for_coverage(1.0) == 2
        with pytest.raises(CompactionError):
            # impossible target when not all faults are detectable
            undetectable = make_matrix([[False]])
            greedy_order(undetectable).tests_for_coverage(0.9)

    def test_negative_weights_rejected(self):
        matrix = make_matrix([[True]])
        with pytest.raises(CompactionError):
            greedy_order(matrix, weights={"f0": -1.0})

    def test_tie_broken_by_decisiveness(self):
        # Both tests detect the single fault; t1 with stronger margin.
        matrix = make_matrix(
            [[True, True]],
            sensitivities=[[-0.5, -5.0]])
        plan = greedy_order(matrix)
        assert plan.order[0] == 1


class TestDetectionMatrixLive:
    def test_matrix_against_rc_ladder(self, rc_generation, rc_bench):
        detected = [t for t in rc_generation.tests
                    if t.detected_at_dictionary]
        faults = [t.fault for t in detected]
        tests = [t.test for t in detected]
        matrix = detection_matrix(rc_bench, faults, tests)
        assert matrix.detects.shape == (len(faults), len(tests))
        # every fault is detected by its own optimal test (diagonal)
        assert np.all(np.diag(matrix.detects))

    def test_plan_covers_everything_detected(self, rc_generation,
                                             rc_bench):
        detected = [t for t in rc_generation.tests
                    if t.detected_at_dictionary]
        matrix = detection_matrix(rc_bench,
                                  [t.fault for t in detected],
                                  [t.test for t in detected])
        plan = greedy_order(matrix)
        assert plan.final_coverage == pytest.approx(1.0)
        # Greedy never needs more tests than faults.
        assert plan.tests_for_coverage(1.0) <= len(detected)

    def test_empty_inputs_rejected(self, rc_bench):
        with pytest.raises(CompactionError):
            detection_matrix(rc_bench, [], [])
