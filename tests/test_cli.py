"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_macro_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["describe", "--macro", "warp-core"])

    @pytest.mark.parametrize("command", ["describe", "faults", "generate",
                                         "compact"])
    def test_commands_parse(self, command):
        args = build_parser().parse_args([command, "--macro", "rc-ladder"])
        assert args.command == command


class TestDescribe:
    def test_prints_cards(self, capsys):
        assert main(["describe", "--macro", "rc-ladder"]) == 0
        out = capsys.readouterr().out
        assert "standard nodes: vin, n1, vout, 0" in out
        assert "Test configuration:" in out

    def test_iv_converter(self, capsys):
        assert main(["describe", "--macro", "iv-converter"]) == 0
        out = capsys.readouterr().out
        assert "Macro type: iv-converter" in out
        assert "thd" in out


class TestFaults:
    def test_exhaustive_list(self, capsys):
        assert main(["faults", "--macro", "rc-ladder"]) == 0
        out = capsys.readouterr().out
        assert "bridge:n1:vin" in out
        assert "6 faults" in out

    def test_ifa_top(self, capsys):
        assert main(["faults", "--macro", "iv-converter", "--ifa",
                     "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert out.count("bridge:") + out.count("pinhole:") == 5


class TestTps:
    def test_renders_graph(self, capsys):
        assert main(["tps", "--macro", "rc-ladder", "--config", "dc-out",
                     "--fault", "bridge:0:vout", "--grid", "5"]) == 0
        out = capsys.readouterr().out
        assert "tps-graph: dc-out / bridge:0:vout" in out
        assert "detection fraction" in out

    def test_impact_override(self, capsys):
        assert main(["tps", "--macro", "rc-ladder", "--config", "dc-out",
                     "--fault", "bridge:0:vout", "--impact", "100k",
                     "--grid", "3"]) == 0
        assert "100kohm" in capsys.readouterr().out

    def test_unknown_config_is_error(self, capsys):
        assert main(["tps", "--macro", "rc-ladder", "--config", "nope",
                     "--fault", "bridge:0:vout"]) == 2

    def test_unknown_fault_is_error(self, capsys):
        assert main(["tps", "--macro", "rc-ladder", "--config", "dc-out",
                     "--fault", "bridge:a:b"]) == 1
        assert "error:" in capsys.readouterr().err


class TestGenerateCompact:
    def test_generate_with_json(self, capsys, tmp_path):
        out_path = tmp_path / "gen.json"
        assert main(["generate", "--macro", "rc-ladder", "--faults", "2",
                     "--json", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "Generated tests" in out
        payload = json.loads(out_path.read_text())
        assert len(payload["tests"]) == 2

    def test_compact_flow(self, capsys):
        assert main(["compact", "--macro", "rc-ladder",
                     "--delta", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "compacted" in out
        assert "coverage at dictionary impact" in out


class TestDescribeJson:
    def test_machine_readable(self, capsys):
        assert main(["describe", "--macro", "rc-ladder", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["macro"] == "rc-ladder"
        assert payload["circuit"]["n_elements"] == 6
        assert payload["standard_nodes"] == ["vin", "n1", "vout", "0"]
        names = [c["name"] for c in payload["configurations"]]
        assert names == ["dc-out", "step-mean"]
        dc_out = payload["configurations"][0]
        assert dc_out["supports_screening"] is True
        assert dc_out["seed_vector"] == [2.0]
        level = dc_out["parameters"][0]
        assert level["name"] == "level"
        assert level["lower"] == 0.0 and level["upper"] == 5.0

    def test_netlist_digest_matches_hashing(self, capsys, rc_macro):
        from repro.hashing import netlist_digest
        assert main(["describe", "--macro", "rc-ladder", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["circuit"]["netlist_digest"] == \
            netlist_digest(rc_macro.circuit.to_netlist())


class TestFaultsJson:
    def test_exhaustive_list(self, capsys):
        assert main(["faults", "--macro", "rc-ladder", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["macro"] == "rc-ladder"
        assert payload["ifa"] is False
        assert payload["n_faults"] == 6
        assert len(payload["faults"]) == 6
        first = payload["faults"][0]
        assert set(first) == {"fault_id", "fault_type", "impact",
                              "likelihood"}
        assert first["fault_id"] == "bridge:n1:vin"

    def test_ifa_top(self, capsys):
        assert main(["faults", "--macro", "iv-converter", "--ifa",
                     "--top", "5", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ifa"] is True
        assert payload["n_faults"] == 5


class TestServeParser:
    def test_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.host == "127.0.0.1"
        assert args.port == 8787
        assert args.engines == 8
        assert args.cache_size == 4096
        assert args.spill is None
        assert args.window_ms == 10.0
        assert args.max_batch == 256

    def test_overrides(self, tmp_path):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--engines", "2",
             "--cache-size", "64", "--spill",
             str(tmp_path / "spill.jsonl"), "--window-ms", "2.5",
             "--max-batch", "8"])
        assert args.port == 0
        assert args.engines == 2
        assert args.cache_size == 64
        assert args.window_ms == 2.5
        assert args.max_batch == 8
