"""Doctest runner: keeps docstring examples executable."""

import doctest

import pytest

import repro.units


@pytest.mark.parametrize("module", [repro.units])
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures"
    assert results.attempted > 0
