"""Unit tests for CircuitBuilder and structural validation."""

import pytest

from repro.circuit import (
    CircuitBuilder,
    NMOS_DEFAULT,
    validate_circuit,
)
from repro.errors import NetlistError


class TestBuilder:
    def test_engineering_values(self):
        c = (CircuitBuilder("b")
             .voltage_source("V1", "a", "0", 5.0)
             .resistor("R1", "a", "b", "10k")
             .capacitor("C1", "b", "0", "2.2n")
             .build())
        assert c.element("R1").resistance == 10e3
        assert c.element("C1").capacitance == pytest.approx(2.2e-9)

    def test_chaining_returns_builder(self):
        b = CircuitBuilder("b")
        assert b.resistor("R1", "a", "0", 1.0) is b

    def test_mosfet_geometry_strings(self):
        c = (CircuitBuilder("m")
             .voltage_source("VDD", "d", "0", 5.0)
             .voltage_source("VG", "g", "0", 2.0)
             .mosfet("M1", "d", "g", "0", "0", NMOS_DEFAULT, "20u", "2u")
             .build())
        assert c.element("M1").w == pytest.approx(20e-6)

    def test_validation_on_build(self):
        b = CircuitBuilder("floating").resistor("R1", "a", "b", 1.0)
        with pytest.raises(NetlistError):
            b.build()  # no ground anywhere

    def test_validation_can_be_skipped(self):
        b = CircuitBuilder("floating").resistor("R1", "a", "b", 1.0)
        c = b.build(validate=False)
        assert len(c) == 1

    def test_all_element_kinds(self):
        c = (CircuitBuilder("all")
             .voltage_source("V1", "in", "0", 1.0)
             .current_source("I1", "0", "x", "1u")
             .resistor("R1", "in", "x", "1k")
             .capacitor("C1", "x", "0", "1p")
             .inductor("L1", "x", "y", "1n")
             .resistor("RY", "y", "0", "1k")
             .vcvs("E1", "e", "0", "x", "0", 2.0)
             .resistor("RE", "e", "0", "1k")
             .vccs("G1", "0", "x", "in", "0", "1m")
             .diode("D1", "x", "0")
             .mosfet("M1", "in", "x", "0", "0", NMOS_DEFAULT, "10u", "2u")
             .build())
        assert len(c) == 11


class TestValidation:
    def test_empty_circuit_rejected(self):
        from repro.circuit import Circuit
        with pytest.raises(NetlistError):
            validate_circuit(Circuit("empty"))

    def test_missing_ground_rejected(self):
        c = (CircuitBuilder("ng")
             .resistor("R1", "a", "b", 1.0)
             .build(validate=False))
        with pytest.raises(NetlistError):
            validate_circuit(c)

    def test_clean_circuit_no_warnings(self, divider_circuit):
        assert validate_circuit(divider_circuit) == []

    def test_dangling_node_warns(self):
        c = (CircuitBuilder("d")
             .voltage_source("V1", "a", "0", 1.0)
             .resistor("R1", "a", "b", 1.0)
             .build(validate=False))
        warnings = validate_circuit(c)
        assert any("dangling" in w for w in warnings)

    def test_cap_only_node_warns_dc_float(self):
        c = (CircuitBuilder("c")
             .voltage_source("V1", "a", "0", 1.0)
             .capacitor("C1", "a", "x", 1e-12)
             .capacitor("C2", "x", "0", 1e-12)
             .build(validate=False))
        warnings = validate_circuit(c)
        assert any("no DC path" in w for w in warnings)

    def test_mos_channel_counts_as_dc_path(self):
        c = (CircuitBuilder("m")
             .voltage_source("VDD", "vdd", "0", 5.0)
             .voltage_source("VG", "g", "0", 2.0)
             .resistor("RD", "vdd", "d", 1e3)
             .mosfet("M1", "d", "g", "s", "0", NMOS_DEFAULT, "10u", "2u")
             .resistor("RS", "s", "0", 1e3)
             .build(validate=False))
        warnings = validate_circuit(c)
        assert not any("no DC path" in w for w in warnings)

    def test_current_source_into_open_node_warns(self):
        c = (CircuitBuilder("i")
             .voltage_source("V1", "a", "0", 1.0)
             .resistor("R1", "a", "0", 1e3)
             .current_source("I1", "0", "x", 1e-6)
             .capacitor("CX", "x", "0", 1e-12)
             .build(validate=False))
        warnings = validate_circuit(c)
        assert any("I1" in w for w in warnings)
