"""Dedicated tests of the diode model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit import Diode
from repro.circuit.diode import THERMAL_VOLTAGE, diode_eval
from repro.errors import NetlistError


def eval_single(vd, i_s=1e-14, n=1.0):
    i, g = diode_eval(np.array([vd]), np.array([i_s]), np.array([n]))
    return float(i[0]), float(g[0])


class TestConstruction:
    def test_nodes(self):
        d = Diode("D1", "a", "k")
        assert d.nodes == ("a", "k")

    def test_rejects_bad_is(self):
        with pytest.raises(NetlistError):
            Diode("D1", "a", "k", i_s=0.0)

    def test_rejects_bad_n(self):
        with pytest.raises(NetlistError):
            Diode("D1", "a", "k", n=-1.0)


class TestShockley:
    def test_zero_bias_zero_current(self):
        i, g = eval_single(0.0)
        assert i == 0.0
        assert g == pytest.approx(1e-14 / THERMAL_VOLTAGE)

    def test_forward_exponential(self):
        i1, _ = eval_single(0.6)
        i2, _ = eval_single(0.6 + THERMAL_VOLTAGE * np.log(10))
        assert i2 / i1 == pytest.approx(10.0, rel=1e-6)

    def test_reverse_saturation(self):
        i, _ = eval_single(-1.0)
        assert i == pytest.approx(-1e-14, rel=1e-3)

    def test_emission_coefficient_slows_exponential(self):
        i_n1, _ = eval_single(0.6, n=1.0)
        i_n2, _ = eval_single(0.6, n=2.0)
        assert i_n2 < i_n1

    def test_high_bias_linear_continuation_finite(self):
        i, g = eval_single(5.0)
        assert np.isfinite(i)
        assert np.isfinite(g)
        assert i > 0.0

    @settings(max_examples=50)
    @given(st.floats(-2.0, 3.0))
    def test_conductance_matches_finite_difference(self, vd):
        h = 1e-7
        i_minus, _ = eval_single(vd - h)
        i_plus, _ = eval_single(vd + h)
        _, g = eval_single(vd)
        fd = (i_plus - i_minus) / (2 * h)
        assert g == pytest.approx(fd, rel=1e-3, abs=1e-18)

    @settings(max_examples=50)
    @given(st.floats(-5.0, 5.0), st.floats(-5.0, 5.0))
    def test_monotone_current(self, va, vb):
        ia, _ = eval_single(min(va, vb))
        ib, _ = eval_single(max(va, vb))
        assert ia <= ib + 1e-18

    def test_continuity_at_crit_voltage(self):
        nvt = THERMAL_VOLTAGE
        vcrit = 40.0 * nvt
        below, _ = eval_single(vcrit - 1e-9)
        above, _ = eval_single(vcrit + 1e-9)
        assert above == pytest.approx(below, rel=1e-6)
