"""Unit tests for the SPICE-flavoured netlist parser."""

import pytest

from repro.circuit import (
    Capacitor,
    Diode,
    Mosfet,
    Resistor,
    VCCS,
    VCVS,
    VoltageSource,
    parse_netlist,
)
from repro.errors import ParseError
from repro.waveforms import DCWave, PWLWave, PulseWave, SineWave, StepWave


class TestBasicElements:
    def test_divider(self):
        c = parse_netlist("""
        * a divider
        VIN in 0 DC 5
        R1 in mid 10k
        R2 mid 0 10k
        .end
        """)
        assert len(c) == 3
        assert c.element("R1").resistance == 10e3

    def test_rc_values(self):
        c = parse_netlist("C1 a 0 2.2n\nR1 a 0 1meg\n")
        assert c.element("C1").capacitance == pytest.approx(2.2e-9)
        assert c.element("R1").resistance == pytest.approx(1e6)

    def test_inductor(self):
        c = parse_netlist("L1 a 0 10u\nR1 a 0 1\n")
        assert c.element("L1").inductance == pytest.approx(10e-6)

    def test_comments_and_blank_lines(self):
        c = parse_netlist("""

        * full-line comment
        R1 a 0 1k  ; trailing comment
        R2 a 0 2k  $ other comment style
        """)
        assert len(c) == 2

    def test_continuation_lines(self):
        c = parse_netlist("R1 a\n+ 0\n+ 5k\n")
        assert c.element("R1").resistance == 5e3

    def test_bare_value_source(self):
        c = parse_netlist("V1 a 0 3.3\nR1 a 0 1k\n")
        assert c.element("V1").dc_value == pytest.approx(3.3)


class TestWaveforms:
    def test_sin(self):
        c = parse_netlist("I1 0 x SIN(1u 0.5u 10k)\nR1 x 0 1k\n")
        wave = c.element("I1").waveform
        assert isinstance(wave, SineWave)
        assert wave.offset == pytest.approx(1e-6)
        assert wave.freq == pytest.approx(10e3)

    def test_pulse(self):
        c = parse_netlist(
            "V1 a 0 PULSE(0 5 0 1n 1n 1u 2u)\nR1 a 0 1k\n")
        assert isinstance(c.element("V1").waveform, PulseWave)

    def test_pwl(self):
        c = parse_netlist("V1 a 0 PWL(0 0 1u 5 2u 0)\nR1 a 0 1k\n")
        wave = c.element("V1").waveform
        assert isinstance(wave, PWLWave)
        assert wave.value_at(1e-6) == pytest.approx(5.0)

    def test_step(self):
        c = parse_netlist("I1 0 x STEP(1u 4u 10n 0.8)\nR1 x 0 1k\n")
        wave = c.element("I1").waveform
        assert isinstance(wave, StepWave)
        assert wave.elev == pytest.approx(4e-6)

    def test_malformed_sin_raises(self):
        with pytest.raises(ParseError):
            parse_netlist("V1 a 0 SIN(1)\nR1 a 0 1k\n")


class TestDevices:
    def test_mosfet_with_model(self):
        c = parse_netlist("""
        M1 d g 0 0 nch W=20u L=2u
        VDD d 0 5
        VG g 0 2
        .model nch NMOS(VTO=0.7 KP=100u LAMBDA=0.01)
        """)
        m = c.element("M1")
        assert isinstance(m, Mosfet)
        assert m.params.vto == pytest.approx(0.7)
        assert m.w == pytest.approx(20e-6)

    def test_model_after_use_site(self):
        c = parse_netlist(
            "M1 d g 0 0 pch\nVD d 0 -5\nVG g 0 -2\n"
            ".model pch PMOS(VTO=-0.9)\n")
        assert c.element("M1").params.kind == "pmos"

    def test_unknown_model_raises(self):
        with pytest.raises(ParseError):
            parse_netlist("M1 d g 0 0 ghost W=1u L=1u\n")

    def test_diode_with_model(self):
        c = parse_netlist(
            "D1 a 0 dmod\nV1 a 0 1\n.model dmod D(IS=1e-15 N=1.5)\n")
        d = c.element("D1")
        assert isinstance(d, Diode)
        assert d.n == pytest.approx(1.5)

    def test_diode_inline_params(self):
        c = parse_netlist("D1 a 0 IS=2e-14\nV1 a 0 1\n")
        assert c.element("D1").i_s == pytest.approx(2e-14)

    def test_controlled_sources(self):
        c = parse_netlist(
            "E1 o 0 a b 10\nG1 o 0 a b 1m\nR1 o 0 1k\n"
            "V1 a 0 1\nR2 b 0 1k\n")
        assert isinstance(c.element("E1"), VCVS)
        assert isinstance(c.element("G1"), VCCS)
        assert c.element("G1").gm == pytest.approx(1e-3)


class TestErrors:
    def test_unknown_element_letter(self):
        with pytest.raises(ParseError):
            parse_netlist("Q1 a b c model\n")

    def test_unsupported_directive(self):
        with pytest.raises(ParseError):
            parse_netlist(".tran 1n 1u\nR1 a 0 1\n")

    def test_missing_value(self):
        with pytest.raises(ParseError):
            parse_netlist("R1 a 0\n")

    def test_error_carries_line_number(self):
        with pytest.raises(ParseError) as err:
            parse_netlist("R1 a 0 1k\nR2 b 0\n")
        assert err.value.line_no == 2

    def test_orphan_continuation(self):
        with pytest.raises(ParseError):
            parse_netlist("+ 5k\n")


class TestRoundTrip:
    def test_serialized_circuit_reparses(self, divider_circuit):
        deck = divider_circuit.to_netlist()
        # Serialized names keep the original card name; reparse and
        # compare structure.
        reparsed = parse_netlist(deck)
        assert len(reparsed) == len(divider_circuit)
        assert set(reparsed.nodes()) == set(divider_circuit.nodes())
