"""Unit tests for the Circuit container."""

import pytest

from repro.circuit import (
    Capacitor,
    Circuit,
    CurrentSource,
    Mosfet,
    NMOS_DEFAULT,
    Resistor,
    VoltageSource,
)
from repro.errors import NetlistError


@pytest.fixture()
def simple():
    return Circuit("simple", [
        VoltageSource("V1", "in", "0", 5.0),
        Resistor("R1", "in", "out", 1e3),
        Resistor("R2", "out", "0", 1e3),
        Capacitor("C1", "out", "0", 1e-9),
    ])


class TestConstruction:
    def test_len_and_iter(self, simple):
        assert len(simple) == 4
        assert [e.name for e in simple] == ["V1", "R1", "R2", "C1"]

    def test_duplicate_name_rejected(self, simple):
        with pytest.raises(NetlistError):
            simple.add(Resistor("r1", "a", "b", 1.0))  # case-insensitive

    def test_contains_case_insensitive(self, simple):
        assert "r1" in simple
        assert "R1" in simple
        assert "R9" not in simple

    def test_element_lookup(self, simple):
        assert simple.element("r2").resistance == 1e3
        with pytest.raises(NetlistError):
            simple.element("nope")


class TestDerivation:
    def test_copy_shares_elements(self, simple):
        dup = simple.copy()
        assert dup.element("R1") is simple.element("R1")
        assert len(dup) == len(simple)

    def test_with_element_does_not_mutate(self, simple):
        grown = simple.with_element(Resistor("RX", "in", "0", 50.0))
        assert "RX" in grown
        assert "RX" not in simple

    def test_without_element(self, simple):
        shrunk = simple.without_element("C1")
        assert "C1" not in shrunk
        assert "C1" in simple

    def test_without_missing_raises(self, simple):
        with pytest.raises(NetlistError):
            simple.without_element("XX")

    def test_replace_element(self, simple):
        swapped = simple.replace_element(Resistor("R1", "in", "out", 2e3))
        assert swapped.element("R1").resistance == 2e3
        assert simple.element("R1").resistance == 1e3

    def test_replace_missing_raises(self, simple):
        with pytest.raises(NetlistError):
            simple.replace_element(Resistor("RQ", "a", "b", 1.0))


class TestQueries:
    def test_nodes_excludes_ground(self, simple):
        assert simple.nodes() == ("in", "out")

    def test_nodes_with_ground(self, simple):
        assert "0" in simple.nodes(include_ground=True)

    def test_has_node(self, simple):
        assert simple.has_node("out")
        assert simple.has_node("0")
        assert simple.has_node("gnd")  # alias
        assert not simple.has_node("xyz")

    def test_elements_at(self, simple):
        names = {e.name for e in simple.elements_at("out")}
        assert names == {"R1", "R2", "C1"}

    def test_elements_at_ground(self, simple):
        names = {e.name for e in simple.elements_at("0")}
        assert names == {"V1", "R2", "C1"}

    def test_elements_of_type(self, simple):
        assert len(simple.elements_of_type(Resistor)) == 2

    def test_sources(self, simple):
        assert [e.name for e in simple.sources()] == ["V1"]

    def test_summary_mentions_counts(self, simple):
        text = simple.summary()
        assert "4 elements" in text
        assert "2 non-ground nodes" in text


class TestSerialization:
    def test_netlist_contains_cards(self, simple):
        deck = simple.to_netlist()
        assert "RR1 in out 1000" in deck
        assert ".end" in deck

    def test_mosfet_card(self):
        c = Circuit("m", [
            Mosfet("M1", "d", "g", "0", "0", NMOS_DEFAULT, 10e-6, 2e-6),
            VoltageSource("V1", "d", "0", 5.0),
        ])
        deck = c.to_netlist()
        assert "nmos" in deck
        assert "W=1e-05" in deck

    def test_current_source_card(self):
        c = Circuit("i", [CurrentSource("I1", "0", "x", 1e-6),
                          Resistor("R1", "x", "0", 1.0)])
        assert "II1 0 x DC 1e-06" in c.to_netlist()
