"""Unit and property tests for the level-1 MOSFET model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit import Mosfet, MosfetParams, NMOS_DEFAULT, PMOS_DEFAULT
from repro.circuit.mosfet import mos_level1
from repro.errors import NetlistError


def eval_single(vgs, vds, vbs=0.0, params=NMOS_DEFAULT, w=10e-6, l=2e-6):
    """Evaluate one device; returns (ids, gm, gds, gmb) scalars."""
    m = Mosfet("M1", "d", "g", "s", "b", params, w, l)
    out = mos_level1(
        np.array([vgs]), np.array([vds]), np.array([vbs]),
        np.array([params.sign]), np.array([m.beta]),
        np.array([params.vto]), np.array([params.lam]),
        np.array([params.gamma]), np.array([params.phi]))
    return tuple(float(x[0]) for x in out)


class TestParams:
    def test_sign(self):
        assert NMOS_DEFAULT.sign == 1.0
        assert PMOS_DEFAULT.sign == -1.0

    def test_rejects_bad_kind(self):
        with pytest.raises(NetlistError):
            MosfetParams(kind="jfet")

    def test_rejects_inconsistent_vto_sign(self):
        with pytest.raises(NetlistError):
            MosfetParams(kind="nmos", vto=-0.5)
        with pytest.raises(NetlistError):
            MosfetParams(kind="pmos", vto=0.5)

    def test_scaled_override(self):
        p = NMOS_DEFAULT.scaled(vto=0.9)
        assert p.vto == 0.9
        assert p.kp == NMOS_DEFAULT.kp

    def test_rejects_non_positive_kp(self):
        with pytest.raises(NetlistError):
            MosfetParams(kp=0.0)


class TestInstance:
    def test_beta(self):
        m = Mosfet("M1", "d", "g", "s", "b", NMOS_DEFAULT, 20e-6, 2e-6)
        assert m.beta == pytest.approx(NMOS_DEFAULT.kp * 10)

    def test_multiplier_scales_beta(self):
        m1 = Mosfet("M1", "d", "g", "s", "b", NMOS_DEFAULT, 20e-6, 2e-6)
        m2 = Mosfet("M2", "d", "g", "s", "b", NMOS_DEFAULT, 20e-6, 2e-6, m=4)
        assert m2.beta == pytest.approx(4 * m1.beta)

    def test_rejects_bad_geometry(self):
        with pytest.raises(NetlistError):
            Mosfet("M1", "d", "g", "s", "b", NMOS_DEFAULT, 0.0, 2e-6)

    def test_with_geometry(self):
        m = Mosfet("M1", "d", "g", "s", "b", NMOS_DEFAULT, 20e-6, 2e-6)
        half = m.with_geometry(l=1e-6)
        assert half.l == 1e-6
        assert half.w == m.w

    def test_gate_caps_positive(self):
        m = Mosfet("M1", "d", "g", "s", "b", NMOS_DEFAULT, 20e-6, 2e-6)
        assert m.cgs > 0.0
        assert m.cgd > 0.0

    def test_nodes_order(self):
        m = Mosfet("M1", "nd", "ng", "ns", "nb", NMOS_DEFAULT, 20e-6, 2e-6)
        assert m.nodes == ("nd", "ng", "ns", "nb")


class TestRegions:
    def test_cutoff(self):
        ids, gm, gds, gmb = eval_single(vgs=0.5, vds=2.0)
        assert ids == 0.0 and gm == 0.0 and gds == 0.0 and gmb == 0.0

    def test_saturation_square_law(self):
        # vov = 0.7, sat: ids = beta/2 * vov^2 * (1 + lam*vds)
        ids, gm, gds, _ = eval_single(vgs=1.5, vds=3.0)
        beta = NMOS_DEFAULT.kp * 5
        expected = 0.5 * beta * 0.7**2 * (1 + NMOS_DEFAULT.lam * 3.0)
        assert ids == pytest.approx(expected)
        assert gm == pytest.approx(beta * 0.7 * (1 + NMOS_DEFAULT.lam * 3.0))

    def test_triode_small_vds(self):
        ids, gm, gds, _ = eval_single(vgs=1.5, vds=0.1)
        beta = NMOS_DEFAULT.kp * 5
        vov = 0.7
        expected = beta * (vov - 0.05) * 0.1 * (1 + NMOS_DEFAULT.lam * 0.1)
        assert ids == pytest.approx(expected)
        lam = NMOS_DEFAULT.lam
        expected_gds = beta * ((vov - 0.1) * (1 + lam * 0.1)
                               + (vov - 0.05) * 0.1 * lam)
        assert gds == pytest.approx(expected_gds)

    def test_pmos_mirror_symmetry(self):
        """PMOS at mirrored voltages carries the mirrored current."""
        nmos = MosfetParams(kind="nmos", vto=0.8, kp=50e-6, lam=0.02,
                            gamma=0.0, phi=0.7)
        pmos = MosfetParams(kind="pmos", vto=-0.8, kp=50e-6, lam=0.02,
                            gamma=0.0, phi=0.7)
        ids_n, gm_n, gds_n, _ = eval_single(1.5, 2.0, 0.0, nmos)
        ids_p, gm_p, gds_p, _ = eval_single(-1.5, -2.0, 0.0, pmos)
        assert ids_p == pytest.approx(-ids_n)
        assert gm_p == pytest.approx(gm_n)
        assert gds_p == pytest.approx(gds_n)

    def test_source_drain_inversion_antisymmetric(self):
        """Without body effect, swapping D and S negates the current."""
        params = MosfetParams(kind="nmos", vto=0.8, kp=50e-6, lam=0.0,
                              gamma=0.0, phi=0.7)
        # Device with vg=2, vd=1, vs=0  vs  the same with vd=0, vs=1.
        ids_fwd, *_ = eval_single(vgs=2.0, vds=1.0, params=params)
        ids_rev, *_ = eval_single(vgs=1.0, vds=-1.0, params=params)
        assert ids_rev == pytest.approx(-ids_fwd)

    def test_body_effect_raises_threshold(self):
        low_vbs, *_ = eval_single(vgs=1.2, vds=2.0, vbs=0.0)
        high_vbs, *_ = eval_single(vgs=1.2, vds=2.0, vbs=-2.0)
        assert high_vbs < low_vbs  # higher vth -> less current

    def test_gmb_positive_when_on(self):
        _, _, _, gmb = eval_single(vgs=1.5, vds=2.0, vbs=-1.0)
        assert gmb > 0.0


class TestContinuity:
    @settings(max_examples=60)
    @given(vgs=st.floats(0.0, 4.0), vbs=st.floats(-3.0, 0.0))
    def test_continuity_at_sat_triode_boundary(self, vgs, vbs):
        """ids is continuous across vds = vov."""
        params = NMOS_DEFAULT
        # Find vov from the model's own threshold math.
        phi_vbs = max(params.phi - vbs, 1e-4)
        vth = params.vto + params.gamma * (np.sqrt(phi_vbs)
                                           - np.sqrt(params.phi))
        vov = vgs - vth
        if vov <= 1e-3:
            return
        below, *_ = eval_single(vgs, vov - 1e-9, vbs)
        above, *_ = eval_single(vgs, vov + 1e-9, vbs)
        assert below == pytest.approx(above, rel=1e-5, abs=1e-15)

    @settings(max_examples=60)
    @given(vds=st.floats(0.01, 4.0), vbs=st.floats(-3.0, 0.0))
    def test_continuity_at_cutoff_boundary(self, vds, vbs):
        """ids -> 0 as vgs -> vth from above."""
        params = NMOS_DEFAULT
        phi_vbs = max(params.phi - vbs, 1e-4)
        vth = params.vto + params.gamma * (np.sqrt(phi_vbs)
                                           - np.sqrt(params.phi))
        just_on, *_ = eval_single(vth + 1e-6, vds, vbs)
        assert abs(just_on) < 1e-12

    @settings(max_examples=60)
    @given(vgs=st.floats(1.0, 3.0), vds=st.floats(0.1, 4.0))
    def test_monotonic_in_vgs(self, vgs, vds):
        """More gate drive, more current (NMOS, fixed vds)."""
        lo, *_ = eval_single(vgs, vds)
        hi, *_ = eval_single(vgs + 0.1, vds)
        assert hi >= lo

    @settings(max_examples=60)
    @given(vgs=st.floats(1.0, 3.0), vds=st.floats(0.05, 3.9))
    def test_gm_matches_finite_difference(self, vgs, vds):
        """Analytic gm agrees with a central difference of ids."""
        h = 1e-5
        ids_m, *_ = eval_single(vgs - h, vds)
        ids_p, *_ = eval_single(vgs + h, vds)
        _, gm, _, _ = eval_single(vgs, vds)
        fd = (ids_p - ids_m) / (2 * h)
        assert gm == pytest.approx(fd, rel=1e-3, abs=1e-12)

    @settings(max_examples=60)
    @given(vgs=st.floats(1.0, 3.0), vds=st.floats(0.05, 3.9))
    def test_gds_matches_finite_difference(self, vgs, vds):
        h = 1e-5
        # Keep clear of the triode/sat kink where gds is discontinuous
        # (level-1 is only C0 there).
        vov = vgs - NMOS_DEFAULT.vto
        if abs(vds - vov) < 1e-3:
            return
        ids_m, *_ = eval_single(vgs, vds - h)
        ids_p, *_ = eval_single(vgs, vds + h)
        _, _, gds, _ = eval_single(vgs, vds)
        fd = (ids_p - ids_m) / (2 * h)
        assert gds == pytest.approx(fd, rel=1e-3, abs=1e-12)
