"""Unit tests for circuit elements."""

import pytest

from repro.circuit import (
    Capacitor,
    CurrentSource,
    Inductor,
    Resistor,
    VCCS,
    VCVS,
    VoltageSource,
    is_ground,
)
from repro.errors import NetlistError
from repro.waveforms import DCWave, SineWave


class TestGround:
    @pytest.mark.parametrize("name", ["0", "gnd", "GND", "Gnd"])
    def test_ground_aliases(self, name):
        assert is_ground(name)

    @pytest.mark.parametrize("name", ["vss", "ground", "00", "n0"])
    def test_non_ground(self, name):
        assert not is_ground(name)


class TestResistor:
    def test_nodes_and_conductance(self):
        r = Resistor("R1", "a", "b", 100.0)
        assert r.nodes == ("a", "b")
        assert r.conductance == pytest.approx(0.01)

    @pytest.mark.parametrize("value", [0.0, -5.0])
    def test_rejects_non_positive(self, value):
        with pytest.raises(NetlistError):
            Resistor("R1", "a", "b", value)

    def test_rename_preserves_value(self):
        r = Resistor("R1", "a", "b", 100.0).renamed("R2")
        assert r.name == "R2"
        assert r.resistance == 100.0

    def test_empty_name_rejected(self):
        with pytest.raises(NetlistError):
            Resistor("", "a", "b", 1.0)

    def test_frozen(self):
        r = Resistor("R1", "a", "b", 100.0)
        with pytest.raises(AttributeError):
            r.resistance = 5.0


class TestCapacitorInductor:
    def test_capacitor_rejects_non_positive(self):
        with pytest.raises(NetlistError):
            Capacitor("C1", "a", "b", 0.0)

    def test_inductor_rejects_non_positive(self):
        with pytest.raises(NetlistError):
            Inductor("L1", "a", "b", -1e-9)

    def test_nodes(self):
        assert Capacitor("C1", "x", "0", 1e-12).nodes == ("x", "0")


class TestSources:
    def test_voltage_source_float_waveform(self):
        v = VoltageSource("V1", "p", "n", 5.0)
        assert v.dc_value == 5.0
        assert v.value_at(1.0) == 5.0

    def test_voltage_source_wave(self):
        v = VoltageSource("V1", "p", "n", SineWave(offset=1.0, amplitude=2.0,
                                                   freq=1e3))
        assert v.dc_value == 1.0
        assert v.value_at(0.25e-3) == pytest.approx(3.0)

    def test_current_source_dcwave(self):
        i = CurrentSource("I1", "0", "x", DCWave(1e-6))
        assert i.dc_value == pytest.approx(1e-6)

    def test_source_nodes(self):
        v = VoltageSource("V1", "p", "n", 1.0)
        assert v.nodes == ("p", "n")


class TestControlledSources:
    def test_vcvs_nodes(self):
        e = VCVS("E1", np="a", nn="b", cp="c", cn="d", gain=10.0)
        assert e.nodes == ("a", "b", "c", "d")
        assert e.gain == 10.0

    def test_vccs_nodes(self):
        g = VCCS("G1", np="a", nn="b", cp="c", cn="d", gm=1e-3)
        assert g.nodes == ("a", "b", "c", "d")
        assert g.gm == pytest.approx(1e-3)
