"""Property-based tests of the netlist layer (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit import (
    Circuit,
    CircuitBuilder,
    Resistor,
    VoltageSource,
    parse_netlist,
)
from repro.units import format_value, parse_value


names = st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789_",
                min_size=1, max_size=8).filter(
                    lambda s: s[0].isalpha())


@st.composite
def resistor_decks(draw):
    """A random connected resistor deck as netlist text."""
    n = draw(st.integers(1, 8))
    values = [draw(st.floats(1.0, 1e6)) for _ in range(n)]
    lines = ["VS n0 0 DC 1"]
    for i, value in enumerate(values):
        lines.append(f"R{i} n{i} n{i + 1} {value:.6g}")
    lines.append(f"RL n{n} 0 1k")
    return "\n".join(lines) + "\n"


class TestParserProperties:
    @settings(max_examples=40)
    @given(resistor_decks())
    def test_parse_serialize_reparse_fixpoint(self, deck):
        """parse -> serialize -> parse preserves structure and values."""
        first = parse_netlist(deck)
        second = parse_netlist(first.to_netlist())
        assert len(second) == len(first)
        assert set(second.nodes()) == set(first.nodes())
        firsts = {e.name.lower(): e for e in first
                  if isinstance(e, Resistor)}
        for element in second:
            if isinstance(element, Resistor):
                # serialized names gain the R prefix once
                key = element.name.lower().removeprefix("r")
                match = firsts.get(key) or firsts.get("r" + key)
                assert match is not None
                assert element.resistance == pytest.approx(
                    match.resistance, rel=1e-6)

    @settings(max_examples=40)
    @given(st.floats(1e-12, 1e9))
    def test_value_formatting_reparses(self, value):
        assert parse_value(format_value(value, digits=12)) == \
            pytest.approx(value, rel=1e-9)


class TestCircuitDerivationProperties:
    @settings(max_examples=30)
    @given(st.integers(1, 10))
    def test_with_without_roundtrip(self, n):
        circuit = Circuit("c", [
            VoltageSource("V1", "a", "0", 1.0),
            Resistor("R1", "a", "0", 1e3)])
        grown = circuit
        for i in range(n):
            grown = grown.with_element(Resistor(f"RX{i}", "a", "0", 1e3))
        shrunk = grown
        for i in range(n):
            shrunk = shrunk.without_element(f"RX{i}")
        assert len(shrunk) == len(circuit)
        assert {e.name for e in shrunk} == {e.name for e in circuit}

    @settings(max_examples=30)
    @given(st.floats(1.0, 1e9))
    def test_replace_preserves_order(self, new_value):
        circuit = Circuit("c", [
            VoltageSource("V1", "a", "0", 1.0),
            Resistor("R1", "a", "b", 1e3),
            Resistor("R2", "b", "0", 1e3)])
        swapped = circuit.replace_element(Resistor("R1", "a", "b",
                                                   new_value))
        assert [e.name for e in swapped] == ["V1", "R1", "R2"]


class TestBuilderEquivalence:
    def test_builder_and_parser_agree(self):
        built = (CircuitBuilder("x")
                 .voltage_source("V1", "in", "0", 5.0)
                 .resistor("R1", "in", "out", "10k")
                 .capacitor("C1", "out", "0", "1n")
                 .build())
        parsed = parse_netlist(
            "V1 in 0 DC 5\nR1 in out 10k\nC1 out 0 1n\n")
        from repro.analysis import operating_point
        assert operating_point(built).v("out") == pytest.approx(
            operating_point(parsed).v("out"))
