"""Unit tests for the lint framework core: diagnostics, reports, registry."""

import pytest

from repro.errors import LintError
from repro.lint import (
    ERROR,
    INFO,
    WARNING,
    Diagnostic,
    LintReport,
    all_rules,
    get_rule,
)


def diag(rule_id="circuit.test", severity=WARNING, subject="x",
         message="msg"):
    return Diagnostic(rule_id, severity, subject, "circuit 'c'", message)


class TestDiagnostic:
    def test_rejects_unknown_severity(self):
        with pytest.raises(ValueError):
            diag(severity="fatal")

    def test_sort_orders_errors_first(self):
        ordered = sorted(
            [diag(severity=INFO), diag(severity=ERROR),
             diag(severity=WARNING)],
            key=lambda d: d.sort_key)
        assert [d.severity for d in ordered] == [ERROR, WARNING, INFO]

    def test_sort_is_deterministic_within_severity(self):
        a = diag(rule_id="circuit.a", subject="n1")
        b = diag(rule_id="circuit.a", subject="n2")
        c = diag(rule_id="circuit.b", subject="n0")
        assert sorted([c, b, a], key=lambda d: d.sort_key) == [a, b, c]

    def test_to_dict_round_trip(self):
        d = diag()
        payload = d.to_dict()
        assert payload["rule"] == d.rule_id
        assert payload["severity"] == d.severity
        assert payload["message"] == d.message

    def test_render_mentions_rule_and_hint(self):
        d = Diagnostic("circuit.x", ERROR, "s", "circuit 'c'", "boom",
                       hint="fix it")
        text = d.render()
        assert "[circuit.x]" in text
        assert "boom" in text
        assert "fix it" in text


class TestLintReport:
    def test_from_iterable_sorts(self):
        report = LintReport.from_iterable(
            [diag(severity=INFO), diag(severity=ERROR)])
        assert report.diagnostics[0].severity == ERROR

    def test_severity_views_and_counts(self):
        report = LintReport.from_iterable(
            [diag(severity=ERROR), diag(severity=WARNING),
             diag(severity=WARNING)])
        assert len(report.errors) == 1
        assert len(report.warnings) == 2
        assert report.counts() == {"error": 1, "warning": 2, "info": 0}

    def test_ok_strict_promotes_warnings(self):
        report = LintReport.from_iterable([diag(severity=WARNING)])
        assert report.ok()
        assert not report.ok(strict=True)

    def test_info_never_blocks(self):
        report = LintReport.from_iterable([diag(severity=INFO)])
        assert report.ok(strict=True)

    def test_raise_for_errors_carries_diagnostics(self):
        report = LintReport.from_iterable([diag(severity=ERROR)])
        with pytest.raises(LintError) as exc_info:
            report.raise_for_errors(stage="unit test")
        assert "unit test" in str(exc_info.value)
        assert exc_info.value.diagnostics[0].rule_id == "circuit.test"

    def test_merge_resorts(self):
        r1 = LintReport.from_iterable([diag(severity=INFO)])
        r2 = LintReport.from_iterable([diag(severity=ERROR)])
        merged = LintReport.merge(r1, r2)
        assert merged.diagnostics[0].severity == ERROR
        assert len(merged) == 2

    def test_restricted_filters_by_rule_id(self):
        report = LintReport.from_iterable(
            [diag(rule_id="circuit.a"), diag(rule_id="circuit.b")])
        sub = report.restricted(["circuit.a"])
        assert [d.rule_id for d in sub] == ["circuit.a"]


class TestRegistry:
    def test_all_rules_sorted_by_id(self):
        ids = [r.rule_id for r in all_rules()]
        assert ids == sorted(ids)
        assert len(ids) >= 15  # circuit + faults + tests families

    def test_scope_filter(self):
        for scope in ("circuit", "faults", "tests"):
            scoped = all_rules(scope)
            assert scoped, f"no rules registered for scope {scope!r}"
            assert all(r.scope == scope for r in scoped)
            assert all(r.rule_id.startswith(scope.rstrip('s') + ".")
                       or r.rule_id.startswith(scope + ".")
                       for r in scoped)

    def test_get_rule_unknown_raises(self):
        with pytest.raises(LintError):
            get_rule("circuit.no-such-rule")

    def test_every_rule_has_catalog_text(self):
        for lint_rule in all_rules():
            assert lint_rule.summary
            assert lint_rule.rationale
