"""Rule-by-rule tests for the fault-dictionary lint pass family.

Includes two of the ISSUE's acceptance fixtures: an out-of-range overlay
stamp (bridge to a node the circuit does not have) and a duplicate-stamp
fault pair (distinct fault ids, identical canonical overlays) — both
flagged before any base circuit is compiled or factorized.
"""

from dataclasses import dataclass

import pytest

from repro.circuit import CircuitBuilder
from repro.faults import BridgingFault, FaultModel, OverlayStamp
from repro.lint import lint_faults
from repro.lint.fault_rules import (
    StampResolutionView,
    canonical_stamp_signature,
)


def divider():
    return (CircuitBuilder("divider")
            .voltage_source("VIN", "in", "0", 5.0)
            .resistor("R1", "in", "mid", "10k")
            .resistor("R2", "mid", "0", "10k")
            .build())


def rule_ids(report):
    return {d.rule_id for d in report}


@dataclass(frozen=True)
class StampedFault(FaultModel):
    """Minimal overlay fault with a fully scriptable stamp set.

    Lets tests construct stamp pathologies (out-of-range nodes, negative
    conductance, distinct ids with identical stamps) that the real
    models' constructors deliberately make impossible.
    """

    ident: str = "custom:0"
    stamps: tuple = ()

    @property
    def fault_id(self) -> str:
        return self.ident

    @property
    def fault_type(self) -> str:
        return "custom"

    @property
    def location(self) -> str:
        return self.ident

    def apply(self, circuit):
        return circuit

    @property
    def supports_overlay(self) -> bool:
        return True

    @property
    def overlay_base_key(self) -> str:
        return "nominal"

    def overlay_base(self, circuit):
        return circuit

    def stamp_delta(self, compiled):
        return self.stamps


class TestDuplicateId:
    def test_raw_list_with_ground_alias_duplicates(self):
        # bridge 0<->mid and gnd<->mid canonicalize to one fault_id.
        faults = [BridgingFault(node_a="0", node_b="mid"),
                  BridgingFault(node_a="gnd", node_b="mid")]
        report = lint_faults(divider(), faults)
        found = [d for d in report if d.rule_id == "fault.duplicate-id"]
        assert found and found[0].subject == "bridge:0:mid"
        assert found[0].severity == "error"

    def test_distinct_sites_clean(self):
        faults = [BridgingFault(node_a="in", node_b="mid"),
                  BridgingFault(node_a="0", node_b="mid")]
        report = lint_faults(divider(), faults)
        assert "fault.duplicate-id" not in rule_ids(report)


class TestSiteUnknown:
    def test_bridge_to_missing_node(self):
        fault = BridgingFault(node_a="mid", node_b="zz")
        report = lint_faults(divider(), [fault])
        found = [d for d in report if d.rule_id == "fault.site-unknown"]
        assert found and "'zz'" in found[0].message

    def test_valid_sites_clean(self):
        fault = BridgingFault(node_a="in", node_b="mid")
        report = lint_faults(divider(), [fault])
        assert report.ok(strict=True)


class TestStampRange:
    """Acceptance fixture: the out-of-range overlay stamp."""

    def test_bridge_to_missing_node_is_out_of_range(self):
        fault = BridgingFault(node_a="mid", node_b="zz")
        report = lint_faults(divider(), [fault])
        found = [d for d in report if d.rule_id == "fault.stamp-range"]
        assert found and found[0].severity == "error"

    def test_explicit_out_of_range_stamp(self):
        fault = StampedFault(
            ident="custom:oob",
            stamps=(OverlayStamp("mid", "nowhere", 1e-4),))
        report = lint_faults(divider(), [fault])
        found = [d for d in report if d.rule_id == "fault.stamp-range"]
        assert found and "'nowhere'" in found[0].message
        assert "index range" in found[0].message

    def test_rank0_stamp_flagged(self):
        fault = StampedFault(
            ident="custom:rank0",
            stamps=(OverlayStamp("mid", "mid", 1e-4),))
        report = lint_faults(divider(), [fault])
        found = [d for d in report if d.rule_id == "fault.stamp-range"]
        assert found and "itself" in found[0].message

    def test_ground_aliases_are_in_range(self):
        fault = StampedFault(
            ident="custom:gnd",
            stamps=(OverlayStamp("mid", "gnd", 1e-4),))
        report = lint_faults(divider(), [fault])
        assert "fault.stamp-range" not in rule_ids(report)


class TestStampSanity:
    def test_negative_conductance_is_error(self):
        fault = StampedFault(
            ident="custom:neg",
            stamps=(OverlayStamp("in", "mid", -1e-4),))
        report = lint_faults(divider(), [fault])
        found = [d for d in report if d.rule_id == "fault.stamp-sanity"]
        assert found and found[0].severity == "error"

    def test_zero_conductance_is_warning(self):
        fault = StampedFault(
            ident="custom:zero",
            stamps=(OverlayStamp("in", "mid", 0.0),))
        report = lint_faults(divider(), [fault])
        found = [d for d in report if d.rule_id == "fault.stamp-sanity"]
        assert found and found[0].severity == "warning"
        assert "no-op" in found[0].message

    def test_real_bridge_stamps_are_sane(self):
        fault = BridgingFault(node_a="in", node_b="mid")
        report = lint_faults(divider(), [fault])
        assert "fault.stamp-sanity" not in rule_ids(report)


class TestEquivalentStamps:
    """Acceptance fixture: the duplicate-stamp fault pair."""

    def test_identical_stamps_distinct_ids_warn(self):
        pair = [
            StampedFault(ident="custom:a",
                         stamps=(OverlayStamp("in", "mid", 1e-4),)),
            StampedFault(ident="custom:b",
                         stamps=(OverlayStamp("mid", "in", 1e-4),)),
        ]
        report = lint_faults(divider(), pair)
        found = [d for d in report
                 if d.rule_id == "fault.equivalent-stamps"
                 and d.severity == "warning"]
        assert found
        assert "custom:a" in found[0].message
        assert "custom:b" in found[0].message

    def test_same_pattern_different_conductance_is_info(self):
        pair = [
            StampedFault(ident="custom:a",
                         stamps=(OverlayStamp("in", "mid", 1e-4),)),
            StampedFault(ident="custom:b",
                         stamps=(OverlayStamp("in", "mid", 2e-4),)),
        ]
        report = lint_faults(divider(), pair)
        infos = [d for d in report
                 if d.rule_id == "fault.equivalent-stamps"
                 and d.severity == "info"]
        assert infos and "collapse" in infos[0].message
        # Info findings never fail a strict gate.
        assert report.ok(strict=True)

    def test_distinct_stamps_clean(self):
        pair = [BridgingFault(node_a="in", node_b="mid"),
                BridgingFault(node_a="0", node_b="mid")]
        report = lint_faults(divider(), pair)
        assert "fault.equivalent-stamps" not in rule_ids(report)


class TestCanonicalSignature:
    def test_ground_alias_and_order_insensitive(self):
        s1 = canonical_stamp_signature(
            "nominal", (OverlayStamp("mid", "0", 1e-4),))
        s2 = canonical_stamp_signature(
            "nominal", (OverlayStamp("gnd", "mid", 1e-4),))
        assert s1 == s2

    def test_conductance_rounded_to_12_digits(self):
        s1 = canonical_stamp_signature(
            "nominal", (OverlayStamp("a", "b", 1e-4),))
        s2 = canonical_stamp_signature(
            "nominal", (OverlayStamp("a", "b", 1e-4 * (1 + 1e-14)),))
        assert s1 == s2

    def test_different_base_keys_never_collide(self):
        stamp = (OverlayStamp("a", "b", 1e-4),)
        assert canonical_stamp_signature("nominal", stamp) != \
            canonical_stamp_signature("pinhole:M1", stamp)


class TestStampResolutionView:
    def test_matches_circuit_node_order(self):
        c = divider()
        view = StampResolutionView(c)
        assert view.circuit is c
        assert list(view.node_index) == list(c.nodes())

    def test_real_stamp_delta_accepts_the_view(self):
        c = divider()
        fault = BridgingFault(node_a="in", node_b="mid")
        stamps = fault.stamp_delta(StampResolutionView(c))
        assert stamps and stamps[0].conductance == \
            pytest.approx(1.0 / fault.impact)
