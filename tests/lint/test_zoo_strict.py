"""Zoo sweep: every registered macro must pass the strict lint gate.

This is the ISSUE's cleanliness acceptance criterion — all macro
circuits, their exhaustive *and* IFA fault dictionaries, and their test
programs lint clean in ``--strict`` mode.  A new macro (or a new lint
rule) that breaks this fails here with the offending diagnostics
rendered, not in a downstream generation run.
"""

import pytest

from repro.faults import ifa_fault_dictionary
from repro.lint import lint_scenario
from repro.macros import available_macros, get_macro


@pytest.mark.parametrize("name", available_macros())
def test_macro_lints_strict_clean(name):
    macro = get_macro(name)
    report = lint_scenario(macro.circuit, macro.fault_dictionary(),
                           macro.test_configurations())
    assert report.ok(strict=True), \
        f"{name}:\n" + "\n".join(d.render() for d in report)


@pytest.mark.parametrize("name", available_macros())
def test_macro_ifa_dictionary_lints_strict_clean(name):
    macro = get_macro(name)
    faults = ifa_fault_dictionary(macro.circuit,
                                  nodes=macro.standard_nodes)
    report = lint_scenario(macro.circuit, faults)
    assert report.ok(strict=True), \
        f"{name}:\n" + "\n".join(d.render() for d in report)


def test_zoo_is_not_empty():
    assert len(available_macros()) >= 6
