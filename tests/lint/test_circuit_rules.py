"""Rule-by-rule tests for the circuit lint pass family.

Every rule gets (at least) one fixture that triggers it and one clean
fixture that must not.  The structural-rank case doubles as the
acceptance fixture: a netlist that is structurally singular must be
flagged by ``repro lint`` *before any factorization*.
"""

import pytest

from repro.circuit import CircuitBuilder, NMOS_DEFAULT
from repro.circuit.elements import Resistor
from repro.errors import NetlistError
from repro.lint import lint_circuit
from repro.lint.structure import (
    build_pattern,
    structural_rank,
    voltage_source_loops,
)


def rule_ids(report):
    return {d.rule_id for d in report}


def clean_divider():
    return (CircuitBuilder("divider")
            .voltage_source("VIN", "in", "0", 5.0)
            .resistor("R1", "in", "mid", "10k")
            .resistor("R2", "mid", "0", "10k")
            .build())


class TestBasicRules:
    def test_clean_circuit_lints_clean(self):
        report = lint_circuit(clean_divider())
        assert report.ok(strict=True)
        assert len(report) == 0

    def test_empty_circuit(self):
        from repro.circuit import Circuit
        report = lint_circuit(Circuit("empty"))
        assert rule_ids(report) == {"circuit.empty"}
        assert report.has_errors

    def test_no_ground(self):
        c = (CircuitBuilder("ng").resistor("R1", "a", "b", 1.0)
             .build(validate=False))
        report = lint_circuit(c)
        assert "circuit.no-ground" in rule_ids(report)

    def test_dangling_node(self):
        c = (CircuitBuilder("d")
             .voltage_source("V1", "a", "0", 1.0)
             .resistor("R1", "a", "b", 1.0)
             .build(validate=False))
        report = lint_circuit(c)
        found = [d for d in report
                 if d.rule_id == "circuit.dangling-node"]
        assert len(found) == 1
        assert found[0].subject == "b"
        assert found[0].severity == "warning"

    def test_dc_path(self):
        c = (CircuitBuilder("c")
             .voltage_source("V1", "a", "0", 1.0)
             .capacitor("C1", "a", "x", 1e-12)
             .capacitor("C2", "x", "0", 1e-12)
             .build(validate=False))
        assert "circuit.dc-path" in rule_ids(lint_circuit(c))

    def test_isource_dc_path(self):
        c = (CircuitBuilder("i")
             .voltage_source("V1", "a", "0", 1.0)
             .resistor("R1", "a", "0", 1e3)
             .current_source("I1", "0", "x", 1e-6)
             .capacitor("CX", "x", "0", 1e-12)
             .build(validate=False))
        assert "circuit.isource-dc-path" in rule_ids(lint_circuit(c))


class TestStructuralRules:
    def test_duplicate_name_on_raw_element_list(self):
        elements = [Resistor("R1", "a", "0", 1e3),
                    Resistor("r1", "a", "0", 2e3)]
        report = lint_circuit(elements)
        found = [d for d in report
                 if d.rule_id == "circuit.duplicate-name"]
        assert found and found[0].severity == "error"

    def test_self_loop(self):
        c = (CircuitBuilder("s")
             .voltage_source("V1", "a", "0", 1.0)
             .resistor("R1", "a", "0", 1e3)
             .resistor("RS", "a", "a", 1e3)
             .build(validate=False))
        found = [d for d in lint_circuit(c)
                 if d.rule_id == "circuit.self-loop"]
        assert found and found[0].subject == "RS"

    def test_ground_alias_self_loop(self):
        # "0" and "gnd" are the same net; an element strapped between
        # them is a self-loop even though the names differ.
        c = (CircuitBuilder("alias")
             .voltage_source("V1", "a", "0", 1.0)
             .resistor("R1", "a", "0", 1e3)
             .resistor("RG", "0", "gnd", 1e3)
             .build(validate=False))
        assert "circuit.self-loop" in rule_ids(lint_circuit(c))

    def test_control_loop(self):
        c = (CircuitBuilder("cl")
             .voltage_source("V1", "a", "0", 1.0)
             .resistor("R1", "a", "0", 1e3)
             .vccs("G1", "a", "0", "b", "b", 1e-3)
             .resistor("RB", "b", "0", 1e3)
             .build(validate=False))
        found = [d for d in lint_circuit(c)
                 if d.rule_id == "circuit.control-loop"]
        assert found and found[0].subject == "G1"

    def test_value_sanity_extreme_resistor(self):
        c = (CircuitBuilder("v")
             .voltage_source("V1", "a", "0", 1.0)
             .resistor("R1", "a", "0", 1e15)
             .build(validate=False))
        found = [d for d in lint_circuit(c)
                 if d.rule_id == "circuit.value-sanity"]
        assert found and found[0].subject == "R1"

    def test_value_sanity_clean_for_normal_values(self):
        report = lint_circuit(clean_divider())
        assert "circuit.value-sanity" not in rule_ids(report)

    def test_floating_gate(self):
        c = (CircuitBuilder("fg")
             .voltage_source("VDD", "vdd", "0", 5.0)
             .resistor("RD", "vdd", "d", 1e3)
             .mosfet("M1", "d", "g", "0", "0", NMOS_DEFAULT,
                     "10u", "2u")
             .capacitor("CG", "g", "0", 1e-12)
             .build(validate=False))
        found = [d for d in lint_circuit(c)
                 if d.rule_id == "circuit.floating-gate"]
        assert found and found[0].subject == "g"
        assert "M1" in found[0].message

    def test_driven_gate_is_clean(self):
        c = (CircuitBuilder("dg")
             .voltage_source("VDD", "vdd", "0", 5.0)
             .voltage_source("VG", "g", "0", 2.0)
             .resistor("RD", "vdd", "d", 1e3)
             .mosfet("M1", "d", "g", "0", "0", NMOS_DEFAULT,
                     "10u", "2u")
             .build(validate=False))
        assert "circuit.floating-gate" not in rule_ids(lint_circuit(c))

    def test_isource_cutset(self):
        # Current source is the only link between two DC islands: its
        # current has no return path at DC.
        c = (CircuitBuilder("cut")
             .voltage_source("V1", "a", "0", 1.0)
             .resistor("R1", "a", "0", 1e3)
             .current_source("I1", "a", "x", 1e-6)
             .capacitor("CX", "x", "0", 1e-12)
             .build(validate=False))
        assert "circuit.isource-cutset" in rule_ids(lint_circuit(c))


class TestSingularityAcceptance:
    """The ISSUE acceptance fixture: a structurally singular netlist is
    flagged before any matrix is ever factorized."""

    def singular_circuit(self):
        return (CircuitBuilder("singular")
                .voltage_source("V1", "0", "gnd", 1.0)
                .resistor("R1", "a", "0", 1e3)
                .voltage_source("V2", "a", "0", 1.0)
                .build(validate=False))

    def test_vsource_loop_flagged(self):
        report = lint_circuit(self.singular_circuit())
        found = [d for d in report
                 if d.rule_id == "circuit.vsource-loop"]
        assert found and found[0].severity == "error"
        assert found[0].subject == "V1"

    def test_structural_rank_flagged(self):
        report = lint_circuit(self.singular_circuit())
        found = [d for d in report
                 if d.rule_id == "circuit.structural-rank"]
        assert found and found[0].severity == "error"
        assert "structural rank" in found[0].message

    def test_parallel_vsources_also_loop(self):
        c = (CircuitBuilder("pv")
             .voltage_source("V1", "a", "0", 1.0)
             .voltage_source("V2", "a", "0", 2.0)
             .resistor("R1", "a", "0", 1e3)
             .build(validate=False))
        found = [d for d in lint_circuit(c)
                 if d.rule_id == "circuit.vsource-loop"]
        assert found and found[0].subject == "V2"

    def test_clean_circuit_has_full_rank(self):
        pattern = build_pattern(clean_divider())
        rank, unmatched = structural_rank(pattern)
        assert rank == pattern.size
        assert unmatched == ()

    def test_rank_deficit_names_branch_unknown(self):
        pattern = build_pattern(self.singular_circuit())
        rank, unmatched = structural_rank(pattern)
        assert rank < pattern.size
        assert any(name.startswith("i(") for name in unmatched)

    def test_voltage_source_loops_helper(self):
        loops = voltage_source_loops(self.singular_circuit())
        assert [name for name, _, _ in loops] == ["V1"]


class TestValidateCircuitBackCompat:
    """`validate_circuit` stays a thin wrapper over the lint rules."""

    def test_errors_still_raise_netlist_error(self):
        from repro.circuit import Circuit, validate_circuit
        with pytest.raises(NetlistError):
            validate_circuit(Circuit("empty"))

    def test_new_rules_do_not_leak_into_legacy_wrapper(self):
        from repro.circuit import validate_circuit
        # Extreme value triggers circuit.value-sanity in the full lint,
        # but the legacy wrapper only runs the original five checks.
        c = (CircuitBuilder("legacy")
             .voltage_source("V1", "a", "0", 1.0)
             .resistor("R1", "a", "0", 1e15)
             .build(validate=False))
        assert validate_circuit(c) == []
        assert "circuit.value-sanity" in rule_ids(lint_circuit(c))

    def test_warning_order_is_deterministic(self):
        from repro.circuit import validate_circuit
        c = (CircuitBuilder("w")
             .voltage_source("V1", "a", "0", 1.0)
             .resistor("R1", "a", "b", 1.0)
             .capacitor("C1", "a", "x", 1e-12)
             .capacitor("C2", "x", "0", 1e-12)
             .current_source("I1", "0", "y", 1e-6)
             .capacitor("CY", "y", "0", 1e-12)
             .build(validate=False))
        first = validate_circuit(c)
        assert first == validate_circuit(c)
        assert any("dangling" in w for w in first)
        assert any("no DC path" in w for w in first)
        assert any("I1" in w for w in first)
