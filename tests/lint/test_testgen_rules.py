"""Rule-by-rule tests for the test-program lint pass family.

The real :class:`TestConfiguration` constructor already rejects many
pathologies, so triggering fixtures use small duck-typed stand-ins (the
rules deliberately access configurations duck-typed); the clean fixtures
are the real macro configurations.
"""

import math

import pytest

from repro.circuit import CircuitBuilder
from repro.lint import lint_tests
from repro.macros import RCLadderMacro
from repro.testgen.parameters import BoundParameter, ParameterSpec
from repro.testgen.procedures import Probe


def divider():
    return (CircuitBuilder("divider")
            .voltage_source("VIN", "in", "0", 5.0)
            .resistor("R1", "in", "mid", "10k")
            .resistor("R2", "mid", "0", "10k")
            .build())


def rule_ids(report):
    return {d.rule_id for d in report}


def bound(name="level", unit="V", lower=0.0, upper=5.0, seed=1.0):
    return BoundParameter(ParameterSpec(name, unit), lower, upper, seed)


class FakeProcedure:
    def __init__(self, **attrs):
        self.probes = ()
        self.__dict__.update(attrs)


class FakeParameters:
    """ParameterSet stand-in: iterable + bounds/seeds/names."""

    def __init__(self, parameters):
        self._parameters = tuple(parameters)

    def __iter__(self):
        return iter(self._parameters)

    @property
    def names(self):
        return tuple(p.name for p in self._parameters)

    @property
    def bounds(self):
        return [(p.lower, p.upper) for p in self._parameters]

    @property
    def seeds(self):
        return [p.seed for p in self._parameters]


class FakeBox:
    def __init__(self, fn):
        self._fn = fn

    def half_widths(self, point):
        return self._fn(point)


class FakeConfig:
    def __init__(self, name, parameters=(), procedure=None,
                 box_function=None, n_return_values=1):
        self.name = name
        self.parameters = FakeParameters(parameters)
        self.procedure = procedure or FakeProcedure(source="VIN",
                                                    observe="mid")
        self.box_function = box_function
        self.n_return_values = n_return_values


class TestDuplicateConfig:
    def test_duplicate_names_error(self):
        configs = [FakeConfig("dc", [bound()]),
                   FakeConfig("DC", [bound()])]
        report = lint_tests(divider(), configs)
        found = [d for d in report
                 if d.rule_id == "test.duplicate-config"
                 and d.severity == "error"]
        assert found and "2 times" in found[0].message

    def test_identical_content_warns(self):
        configs = [FakeConfig("a", [bound()]),
                   FakeConfig("b", [bound()])]
        report = lint_tests(divider(), configs)
        found = [d for d in report
                 if d.rule_id == "test.duplicate-config"
                 and d.severity == "warning"]
        assert found
        assert "identical measurements" in found[0].message

    def test_differing_procedure_state_is_distinct(self):
        # Same source/observe/parameters but a different post-processing
        # mode: NOT duplicates (the iv-converter step-max/step-accumulate
        # pair regressed on exactly this).
        configs = [
            FakeConfig("a", [bound()],
                       FakeProcedure(source="VIN", observe="mid",
                                     mode="max")),
            FakeConfig("b", [bound()],
                       FakeProcedure(source="VIN", observe="mid",
                                     mode="accumulate")),
        ]
        report = lint_tests(divider(), configs)
        assert "test.duplicate-config" not in rule_ids(report)


class TestUnknownNode:
    def test_missing_stimulus_source(self):
        config = FakeConfig("bad", [bound()],
                            FakeProcedure(source="VXX", observe="mid"))
        report = lint_tests(divider(), [config])
        found = [d for d in report if d.rule_id == "test.unknown-node"]
        assert found and "'VXX'" in found[0].message

    def test_non_source_stimulus_element(self):
        config = FakeConfig("bad", [bound()],
                            FakeProcedure(source="R1", observe="mid"))
        report = lint_tests(divider(), [config])
        found = [d for d in report if d.rule_id == "test.unknown-node"]
        assert found and "not a source" in found[0].message

    def test_missing_observe_node(self):
        config = FakeConfig("bad", [bound()],
                            FakeProcedure(source="VIN", observe="zz"))
        report = lint_tests(divider(), [config])
        assert "test.unknown-node" in rule_ids(report)

    def test_current_probe_must_carry_branch_current(self):
        config = FakeConfig(
            "bad", [bound()],
            FakeProcedure(source="VIN", observe="mid",
                          probes=(Probe("i", "R1"),)))
        report = lint_tests(divider(), [config])
        found = [d for d in report if d.rule_id == "test.unknown-node"]
        assert found and "branch current" in found[0].message

    def test_valid_probes_clean(self):
        config = FakeConfig(
            "ok", [bound()],
            FakeProcedure(source="VIN", observe="mid",
                          probes=(Probe("v", "mid"), Probe("i", "VIN"))))
        report = lint_tests(divider(), [config])
        assert "test.unknown-node" not in rule_ids(report)


class TestStimulusRange:
    def test_non_finite_bound_is_error(self):
        config = FakeConfig("inf", [bound(lower=-math.inf,
                                          upper=math.inf, seed=0.0)])
        report = lint_tests(divider(), [config])
        found = [d for d in report
                 if d.rule_id == "test.stimulus-range"
                 and d.severity == "error"]
        assert found

    def test_implausible_unit_magnitude_warns(self):
        config = FakeConfig("kv", [bound(lower=0.0, upper=5e4,
                                         seed=1.0)])
        report = lint_tests(divider(), [config])
        found = [d for d in report
                 if d.rule_id == "test.stimulus-range"
                 and d.severity == "warning"]
        assert found and "plausible range" in found[0].message

    def test_unknown_unit_not_checked(self):
        config = FakeConfig("au", [bound(unit="furlong", lower=0.0,
                                         upper=1e18, seed=1.0)])
        report = lint_tests(divider(), [config])
        assert "test.stimulus-range" not in rule_ids(report)


class TestBoxRules:
    def test_wrong_arity_is_error(self):
        config = FakeConfig("arity", [bound()],
                            box_function=FakeBox(lambda p: [1.0, 2.0]),
                            n_return_values=1)
        report = lint_tests(divider(), [config])
        found = [d for d in report if d.rule_id == "test.box-sanity"]
        assert found and "2 half-width(s)" in found[0].message

    def test_negative_half_width_is_error(self):
        config = FakeConfig("neg", [bound()],
                            box_function=FakeBox(lambda p: [-1.0]))
        report = lint_tests(divider(), [config])
        found = [d for d in report if d.rule_id == "test.box-sanity"]
        assert found and found[0].severity == "error"

    def test_raising_box_is_error(self):
        def explode(point):
            raise ValueError("no calibration data")
        config = FakeConfig("boom", [bound()],
                            box_function=FakeBox(explode))
        report = lint_tests(divider(), [config])
        found = [d for d in report if d.rule_id == "test.box-sanity"]
        assert found and "raised" in found[0].message

    def test_midpoint_spike_warns(self):
        def spiky(point):
            # Blows up only near the axis midpoint (2.5 for [0, 5]).
            return [100.0 if abs(point[0] - 2.5) < 0.1 else 1.0]
        config = FakeConfig("spike", [bound()],
                            box_function=FakeBox(spiky))
        report = lint_tests(divider(), [config])
        found = [d for d in report if d.rule_id == "test.box-monotonic"]
        assert found and found[0].severity == "warning"
        assert "spikes" in found[0].message

    def test_smooth_box_clean(self):
        config = FakeConfig("ok", [bound()],
                            box_function=FakeBox(
                                lambda p: [1.0 + 0.1 * p[0]]))
        report = lint_tests(divider(), [config])
        assert report.ok(strict=True)


class TestRealConfigurationsClean:
    def test_rc_ladder_configurations_lint_clean(self):
        macro = RCLadderMacro()
        report = lint_tests(macro.circuit, macro.test_configurations())
        assert report.ok(strict=True), [d.render() for d in report]
