"""Tests for the repo-level AST contract linter (tools/lint_repro.py).

The ISSUE's acceptance criterion: the linter must fail when
``np.linalg.solve`` is introduced outside ``analysis/backend.py`` —
demonstrated here by linting bad snippets, including alias-renamed
imports that a grep-based check would miss.
"""

import importlib.util
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
LINTER = REPO_ROOT / "tools" / "lint_repro.py"


@pytest.fixture(scope="module")
def linter():
    spec = importlib.util.spec_from_file_location("lint_repro", LINTER)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def run_on_snippet(linter, tmp_path, source, capsys, as_module=None):
    path = tmp_path / "snippet.py"
    path.write_text(source, encoding="utf-8")
    argv = [str(path)]
    if as_module is not None:
        argv = ["--as-module", as_module] + argv
    code = linter.main(argv)
    captured = capsys.readouterr()
    return code, captured.out + captured.err


class TestBackendContract:
    def test_repo_itself_is_clean(self, linter, capsys):
        assert linter.main([]) == 0
        out = capsys.readouterr().out
        assert "contracts hold" in out

    def test_np_linalg_solve_outside_backend_fails(self, linter,
                                                   tmp_path, capsys):
        code, output = run_on_snippet(
            linter, tmp_path,
            "import numpy as np\n"
            "def f(a, b):\n"
            "    return np.linalg.solve(a, b)\n",
            capsys)
        assert code == 1
        assert "REPRO-LINALG" in output
        assert "numpy.linalg.solve" in output

    def test_alias_renamed_import_still_caught(self, linter, tmp_path,
                                               capsys):
        code, output = run_on_snippet(
            linter, tmp_path,
            "from numpy.linalg import solve as harmless\n"
            "def f(a, b):\n"
            "    return harmless(a, b)\n",
            capsys)
        assert code == 1
        assert "REPRO-LINALG" in output

    def test_scipy_sparse_splu_caught(self, linter, tmp_path, capsys):
        code, output = run_on_snippet(
            linter, tmp_path,
            "from scipy.sparse.linalg import splu\n"
            "lu = splu(None)\n",
            capsys)
        assert code == 1
        assert "scipy.sparse.linalg.splu" in output

    def test_backend_module_itself_is_exempt(self, linter, capsys):
        backend = REPO_ROOT / "src" / "repro" / "analysis" / "backend.py"
        assert linter.main([str(backend)]) == 0

    def test_solve_dense_call_is_fine(self, linter, tmp_path, capsys):
        code, _ = run_on_snippet(
            linter, tmp_path,
            "from repro.analysis.backend import solve_dense\n"
            "def f(a, b):\n"
            "    return solve_dense(a, b)\n",
            capsys)
        assert code == 0


class TestDeterminismContract:
    def test_wall_clock_caught(self, linter, tmp_path, capsys):
        code, output = run_on_snippet(
            linter, tmp_path,
            "import time\n"
            "stamp = time.time()\n",
            capsys)
        assert code == 1
        assert "REPRO-NONDET" in output

    def test_monotonic_budget_timer_allowed(self, linter, tmp_path,
                                            capsys):
        code, _ = run_on_snippet(
            linter, tmp_path,
            "import time\n"
            "start = time.monotonic()\n",
            capsys)
        assert code == 0

    def test_unseeded_default_rng_caught(self, linter, tmp_path, capsys):
        code, output = run_on_snippet(
            linter, tmp_path,
            "import numpy as np\n"
            "rng = np.random.default_rng()\n",
            capsys)
        assert code == 1
        assert "without a seed" in output

    def test_seeded_default_rng_allowed(self, linter, tmp_path, capsys):
        code, _ = run_on_snippet(
            linter, tmp_path,
            "import numpy as np\n"
            "rng = np.random.default_rng(42)\n",
            capsys)
        assert code == 0

    def test_global_numpy_sampler_caught(self, linter, tmp_path, capsys):
        code, output = run_on_snippet(
            linter, tmp_path,
            "import numpy as np\n"
            "x = np.random.normal(0.0, 1.0)\n",
            capsys)
        assert code == 1
        assert "global-state RNG" in output

    def test_stdlib_random_caught(self, linter, tmp_path, capsys):
        code, output = run_on_snippet(
            linter, tmp_path,
            "import random\n"
            "x = random.random()\n",
            capsys)
        assert code == 1
        assert "stdlib random.random" in output


class TestServeClockContract:
    """repro.serve.metrics is the serving layer's only clock boundary."""

    TRIGGER = ("import time\n"
               "def flush_window():\n"
               "    return time.monotonic()\n")
    CLEAN = ("from repro.serve.metrics import ServeStats\n"
             "def flush_window(stats):\n"
             "    return stats.timer()\n")

    def test_monotonic_in_serve_module_caught(self, linter, tmp_path,
                                              capsys):
        code, output = run_on_snippet(
            linter, tmp_path, self.TRIGGER, capsys,
            as_module="repro.serve.frontdoor")
        assert code == 1
        assert "REPRO-NONDET" in output
        assert "outside repro.serve.metrics" in output

    def test_perf_counter_in_serve_module_caught(self, linter, tmp_path,
                                                 capsys):
        code, output = run_on_snippet(
            linter, tmp_path,
            "import time\nstart = time.perf_counter()\n",
            capsys, as_module="repro.serve.pool")
        assert code == 1
        assert "REPRO-NONDET" in output

    def test_alias_renamed_monotonic_caught(self, linter, tmp_path,
                                            capsys):
        code, output = run_on_snippet(
            linter, tmp_path,
            "from time import monotonic as now\nstamp = now()\n",
            capsys, as_module="repro.serve.cache")
        assert code == 1
        assert "REPRO-NONDET" in output

    def test_metrics_module_is_the_exemption(self, linter, tmp_path,
                                             capsys):
        code, _ = run_on_snippet(
            linter, tmp_path, self.TRIGGER, capsys,
            as_module="repro.serve.metrics")
        assert code == 0

    def test_outside_serve_monotonic_stays_allowed(self, linter,
                                                   tmp_path, capsys):
        # The budget-timer allowance elsewhere in the repo is untouched.
        code, _ = run_on_snippet(linter, tmp_path, self.TRIGGER, capsys)
        assert code == 0
        code, _ = run_on_snippet(
            linter, tmp_path, self.TRIGGER, capsys,
            as_module="repro.testgen.generator")
        assert code == 0

    def test_token_passing_style_is_clean(self, linter, tmp_path,
                                          capsys):
        code, _ = run_on_snippet(
            linter, tmp_path, self.CLEAN, capsys,
            as_module="repro.serve.frontdoor")
        assert code == 0

    def test_shipped_serve_package_is_clean(self, linter, capsys):
        serve_dir = REPO_ROOT / "src" / "repro" / "serve"
        files = sorted(str(p) for p in serve_dir.glob("*.py"))
        assert files  # the package exists and ships modules
        assert linter.main(files) == 0

    def test_as_module_needs_a_value(self, linter, capsys):
        assert linter.main(["--as-module"]) == 2

    def test_as_module_needs_files(self, linter, capsys):
        assert linter.main(["--as-module", "repro.serve.pool"]) == 2


class TestScoping:
    def test_sharding_seeds_are_reachable(self, linter):
        modules = linter.package_files()
        reachable = linter.reachable_modules(modules)
        for seed in linter.DETERMINISM_SEEDS:
            assert seed in reachable
        # The engine underpins every sharded run.
        assert "repro.analysis.engine" in reachable

    def test_serve_package_is_reachable(self, linter):
        modules = linter.package_files()
        reachable = linter.reachable_modules(modules)
        assert "repro.serve" in linter.DETERMINISM_SEEDS
        for module in ("repro.serve.frontdoor", "repro.serve.metrics",
                       "repro.serve.cache", "repro.serve.pool",
                       "repro.serve.server", "repro.hashing"):
            assert module in reachable

    def test_in_serve_package_helper(self, linter):
        assert linter.in_serve_package("repro.serve")
        assert linter.in_serve_package("repro.serve.cache")
        assert not linter.in_serve_package("repro.serveur")
        assert not linter.in_serve_package("repro.testgen.sharding")

    def test_backend_module_name_resolution(self, linter):
        backend = REPO_ROOT / "src" / "repro" / "analysis" / "backend.py"
        assert linter.module_name(backend) == linter.BACKEND_MODULE

    def test_missing_file_is_usage_error(self, linter, capsys):
        assert linter.main(["/no/such/file.py"]) == 2


def test_ci_runs_the_linter():
    workflow = (REPO_ROOT / ".github" / "workflows" /
                "ci.yml").read_text(encoding="utf-8")
    assert "tools/lint_repro.py" in workflow
    assert "lint --all --strict" in workflow
