"""Tests for the repo-level AST contract linter (tools/lint_repro.py).

The ISSUE's acceptance criterion: the linter must fail when
``np.linalg.solve`` is introduced outside ``analysis/backend.py`` —
demonstrated here by linting bad snippets, including alias-renamed
imports that a grep-based check would miss.
"""

import importlib.util
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
LINTER = REPO_ROOT / "tools" / "lint_repro.py"


@pytest.fixture(scope="module")
def linter():
    spec = importlib.util.spec_from_file_location("lint_repro", LINTER)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def run_on_snippet(linter, tmp_path, source, capsys):
    path = tmp_path / "snippet.py"
    path.write_text(source, encoding="utf-8")
    code = linter.main([str(path)])
    captured = capsys.readouterr()
    return code, captured.out + captured.err


class TestBackendContract:
    def test_repo_itself_is_clean(self, linter, capsys):
        assert linter.main([]) == 0
        out = capsys.readouterr().out
        assert "contracts hold" in out

    def test_np_linalg_solve_outside_backend_fails(self, linter,
                                                   tmp_path, capsys):
        code, output = run_on_snippet(
            linter, tmp_path,
            "import numpy as np\n"
            "def f(a, b):\n"
            "    return np.linalg.solve(a, b)\n",
            capsys)
        assert code == 1
        assert "REPRO-LINALG" in output
        assert "numpy.linalg.solve" in output

    def test_alias_renamed_import_still_caught(self, linter, tmp_path,
                                               capsys):
        code, output = run_on_snippet(
            linter, tmp_path,
            "from numpy.linalg import solve as harmless\n"
            "def f(a, b):\n"
            "    return harmless(a, b)\n",
            capsys)
        assert code == 1
        assert "REPRO-LINALG" in output

    def test_scipy_sparse_splu_caught(self, linter, tmp_path, capsys):
        code, output = run_on_snippet(
            linter, tmp_path,
            "from scipy.sparse.linalg import splu\n"
            "lu = splu(None)\n",
            capsys)
        assert code == 1
        assert "scipy.sparse.linalg.splu" in output

    def test_backend_module_itself_is_exempt(self, linter, capsys):
        backend = REPO_ROOT / "src" / "repro" / "analysis" / "backend.py"
        assert linter.main([str(backend)]) == 0

    def test_solve_dense_call_is_fine(self, linter, tmp_path, capsys):
        code, _ = run_on_snippet(
            linter, tmp_path,
            "from repro.analysis.backend import solve_dense\n"
            "def f(a, b):\n"
            "    return solve_dense(a, b)\n",
            capsys)
        assert code == 0


class TestDeterminismContract:
    def test_wall_clock_caught(self, linter, tmp_path, capsys):
        code, output = run_on_snippet(
            linter, tmp_path,
            "import time\n"
            "stamp = time.time()\n",
            capsys)
        assert code == 1
        assert "REPRO-NONDET" in output

    def test_monotonic_budget_timer_allowed(self, linter, tmp_path,
                                            capsys):
        code, _ = run_on_snippet(
            linter, tmp_path,
            "import time\n"
            "start = time.monotonic()\n",
            capsys)
        assert code == 0

    def test_unseeded_default_rng_caught(self, linter, tmp_path, capsys):
        code, output = run_on_snippet(
            linter, tmp_path,
            "import numpy as np\n"
            "rng = np.random.default_rng()\n",
            capsys)
        assert code == 1
        assert "without a seed" in output

    def test_seeded_default_rng_allowed(self, linter, tmp_path, capsys):
        code, _ = run_on_snippet(
            linter, tmp_path,
            "import numpy as np\n"
            "rng = np.random.default_rng(42)\n",
            capsys)
        assert code == 0

    def test_global_numpy_sampler_caught(self, linter, tmp_path, capsys):
        code, output = run_on_snippet(
            linter, tmp_path,
            "import numpy as np\n"
            "x = np.random.normal(0.0, 1.0)\n",
            capsys)
        assert code == 1
        assert "global-state RNG" in output

    def test_stdlib_random_caught(self, linter, tmp_path, capsys):
        code, output = run_on_snippet(
            linter, tmp_path,
            "import random\n"
            "x = random.random()\n",
            capsys)
        assert code == 1
        assert "stdlib random.random" in output


class TestScoping:
    def test_sharding_seeds_are_reachable(self, linter):
        modules = linter.package_files()
        reachable = linter.reachable_modules(modules)
        for seed in linter.DETERMINISM_SEEDS:
            assert seed in reachable
        # The engine underpins every sharded run.
        assert "repro.analysis.engine" in reachable

    def test_backend_module_name_resolution(self, linter):
        backend = REPO_ROOT / "src" / "repro" / "analysis" / "backend.py"
        assert linter.module_name(backend) == linter.BACKEND_MODULE

    def test_missing_file_is_usage_error(self, linter, capsys):
        assert linter.main(["/no/such/file.py"]) == 2


def test_ci_runs_the_linter():
    workflow = (REPO_ROOT / ".github" / "workflows" /
                "ci.yml").read_text(encoding="utf-8")
    assert "tools/lint_repro.py" in workflow
    assert "lint --all --strict" in workflow
