"""Runner entry points, the pre-flight hooks and the CLI subcommand."""

import json

import pytest

from repro.circuit import CircuitBuilder
from repro.cli import main as cli_main
from repro.errors import LintError
from repro.faults import BridgingFault
from repro.lint import (
    lint_scenario,
    preflight_check,
    render_json,
    render_text,
    report_to_dict,
)
from repro.macros import RCLadderMacro


def divider():
    return (CircuitBuilder("divider")
            .voltage_source("VIN", "in", "0", 5.0)
            .resistor("R1", "in", "mid", "10k")
            .resistor("R2", "mid", "0", "10k")
            .build())


def singular():
    return (CircuitBuilder("singular")
            .voltage_source("V1", "0", "gnd", 1.0)
            .resistor("R1", "a", "0", 1e3)
            .voltage_source("V2", "a", "0", 1.0)
            .build(validate=False))


class TestScenario:
    def test_scenario_merges_all_families(self):
        faults = [BridgingFault(node_a="mid", node_b="zz")]
        report = lint_scenario(divider(), faults)
        ids = {d.rule_id for d in report}
        assert "fault.site-unknown" in ids
        assert "fault.stamp-range" in ids

    def test_clean_scenario(self):
        macro = RCLadderMacro()
        report = lint_scenario(macro.circuit, macro.fault_dictionary(),
                               macro.test_configurations())
        assert report.ok(strict=True), [d.render() for d in report]

    def test_explicit_rule_subset(self):
        report = lint_scenario(singular(),
                               rules=["circuit.vsource-loop"])
        assert {d.rule_id for d in report} == {"circuit.vsource-loop"}


class TestPreflight:
    def test_clean_circuit_passes(self):
        report = preflight_check(divider())
        assert report.ok(strict=True)

    def test_singular_circuit_raises(self):
        with pytest.raises(LintError) as exc_info:
            preflight_check(singular())
        assert any(d.rule_id == "circuit.structural-rank"
                   for d in exc_info.value.diagnostics)

    def test_strict_promotes_warnings(self):
        c = (CircuitBuilder("warn")
             .voltage_source("V1", "a", "0", 1.0)
             .resistor("R1", "a", "b", 1.0)
             .build(validate=False))
        preflight_check(c)  # dangling node is only a warning
        with pytest.raises(LintError):
            preflight_check(c, strict=True)


class TestEngineHook:
    def test_engine_preflight_rejects_singular(self):
        from repro.analysis.engine import SimulationEngine
        with pytest.raises(LintError):
            SimulationEngine(singular(), preflight="error")

    def test_engine_preflight_accepts_clean(self):
        from repro.analysis.engine import SimulationEngine
        engine = SimulationEngine(divider(), preflight="strict")
        assert engine is not None

    def test_engine_rejects_bad_mode(self):
        from repro.analysis.engine import SimulationEngine
        with pytest.raises(ValueError):
            SimulationEngine(divider(), preflight="pedantic")

    def test_engine_default_is_no_preflight(self):
        from repro.analysis.engine import SimulationEngine
        # Lint-rejected but numerically solvable circuits must still
        # work by default (back-compat).
        c = (CircuitBuilder("warn")
             .voltage_source("V1", "a", "0", 1.0)
             .resistor("R1", "a", "b", 1.0)
             .resistor("R2", "b", "0", 1.0)
             .resistor("RD", "a", "c", 1.0)
             .build(validate=False))
        SimulationEngine(c)


class TestGeneratorHook:
    def test_generate_tests_preflight_rejects_bad_faults(self):
        from repro.testgen import GenerationSettings, generate_tests
        macro = RCLadderMacro()
        bad = [BridgingFault(node_a="in", node_b="no-such-node")]
        with pytest.raises(LintError):
            generate_tests(macro.circuit, macro.test_configurations(),
                           bad, GenerationSettings(),
                           preflight="error")


class TestReporters:
    def test_text_report_mentions_rules(self):
        report = lint_scenario(singular())
        text = render_text(report, title="singular", strict=True)
        assert "singular" in text
        assert "circuit.vsource-loop" in text
        assert "FAILED" in text

    def test_clean_text_report(self):
        text = render_text(lint_scenario(divider()), strict=True)
        assert "clean" in text

    def test_json_round_trip(self):
        report = lint_scenario(singular())
        payload = json.loads(render_json(report))
        assert payload == report_to_dict(report)
        assert payload["ok"] is False
        assert payload["counts"]["error"] >= 2
        rules = [d["rule"] for d in payload["diagnostics"]]
        assert "circuit.structural-rank" in rules


class TestCli:
    def test_lint_all_strict_passes(self, capsys):
        assert cli_main(["lint", "--all", "--strict"]) == 0
        out = capsys.readouterr().out
        assert "rc-ladder" in out
        assert "clean" in out

    def test_lint_single_macro_json(self, capsys):
        assert cli_main(["lint", "--macro", "rc-ladder",
                         "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["rc-ladder"]["ok"] is True

    def test_lint_ifa_dictionary(self, capsys):
        assert cli_main(["lint", "--macro", "rc-ladder", "--ifa",
                         "--strict"]) == 0
        assert "clean" in capsys.readouterr().out
