"""Unit tests of sweep-spec parsing and cell expansion."""

import json

import pytest

from repro.errors import TestGenerationError as GenError
from repro.errors import ToleranceError
from repro.scenarios import load_spec, parse_spec, scenario_id
from repro.scenarios.families import DictionarySpec, get_family
from repro.tolerance import get_corner

MINIMAL = {
    "campaign": {"name": "mini"},
    "topologies": [{"family": "rc-ladder",
                    "axes": {"n_sections": [2, 3]}}],
}


class TestParsing:
    def test_defaults(self):
        spec = parse_spec(MINIMAL)
        assert spec.name == "mini"
        assert spec.mode == "screen"
        assert [c.name for c in spec.corners] == ["tt"]
        assert [d.label for d in spec.dictionaries] == ["ifa"]
        assert len(spec.cells()) == 2

    def test_full_cross_product(self):
        spec = parse_spec({
            **MINIMAL,
            "corners": ["tt", "ss", "rhi"],
            "dictionaries": [{"label": "a"},
                             {"label": "b", "kind": "exhaustive"}],
        })
        assert len(spec.cells()) == 2 * 3 * 2

    def test_custom_corner_clause(self):
        spec = parse_spec({**MINIMAL,
                           "custom_corners": [
                               {"name": "res-up", "resistor": 1.5}]})
        assert [c.name for c in spec.corners] == ["res-up"]
        assert spec.corners[0].resistor == 1.5

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(GenError, match="unknown top-level"):
            parse_spec({**MINIMAL, "topologys": []})

    def test_unknown_corner_rejected(self):
        with pytest.raises(ToleranceError, match="unknown process corner"):
            parse_spec({**MINIMAL, "corners": ["slowslow"]})

    def test_unknown_dictionary_key_rejected(self):
        with pytest.raises(GenError, match="unknown key"):
            parse_spec({**MINIMAL,
                        "dictionaries": [{"label": "x", "topn": 3}]})

    def test_missing_family_rejected(self):
        with pytest.raises(GenError, match="family"):
            parse_spec({"campaign": {"name": "x"},
                        "topologies": [{"axes": {}}]})

    def test_bad_mode_rejected(self):
        with pytest.raises(GenError, match="mode"):
            parse_spec({**MINIMAL, "campaign": {"name": "x",
                                                "mode": "explore"}})

    def test_duplicate_dictionary_labels_rejected(self):
        with pytest.raises(GenError, match="unique"):
            parse_spec({**MINIMAL,
                        "dictionaries": [{"label": "a"},
                                         {"label": "a", "top_n": 3}]})


class TestLoading:
    def test_toml_and_json_agree(self, tmp_path):
        toml_path = tmp_path / "spec.toml"
        toml_path.write_text(
            'corners = ["tt", "ss"]\n'
            '[campaign]\nname = "x"\n'
            '[[topologies]]\nfamily = "rc-ladder"\n'
            '[topologies.axes]\nn_sections = [2, 3]\n')
        json_path = tmp_path / "spec.json"
        json_path.write_text(json.dumps(
            {**MINIMAL, "campaign": {"name": "x"},
             "corners": ["tt", "ss"]}))
        toml_cells = load_spec(toml_path).cells()
        json_cells = load_spec(json_path).cells()
        assert [c.scenario_id for c in toml_cells] == \
            [c.scenario_id for c in json_cells]

    def test_missing_and_wrong_suffix(self, tmp_path):
        with pytest.raises(GenError, match="no such"):
            load_spec(tmp_path / "nope.toml")
        bad = tmp_path / "spec.yaml"
        bad.write_text("{}")
        with pytest.raises(GenError, match="toml or"):
            load_spec(bad)

    def test_malformed_toml_named(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text("campaign = [unclosed\n")
        with pytest.raises(GenError, match="malformed TOML"):
            load_spec(path)


class TestScenarioIds:
    def test_id_ignores_declaration_order(self):
        a = parse_spec({**MINIMAL, "corners": ["tt", "ss"]})
        b = parse_spec({**MINIMAL, "corners": ["ss", "tt"]})
        assert {c.scenario_id for c in a.cells()} == \
            {c.scenario_id for c in b.cells()}

    def test_id_separates_every_axis(self):
        family = get_family("rc-ladder")
        base = scenario_id(family.variant({"n_sections": 2}),
                           get_corner("tt"), DictionarySpec())
        for variant, corner, dictionary in (
                (family.variant({"n_sections": 3}), get_corner("tt"),
                 DictionarySpec()),
                (family.variant({"n_sections": 2}), get_corner("ss"),
                 DictionarySpec()),
                (family.variant({"n_sections": 2}), get_corner("tt"),
                 DictionarySpec(top_n=4))):
            assert scenario_id(variant, corner, dictionary) != base
