"""Campaign-runner behavior: determinism, resume, degeneracy, golden.

The two satellite contracts of the scenario engine live here:

* **worker-count independence** — running the same spec with
  ``n_jobs=1`` and ``n_jobs=4`` yields bitwise-identical JSON-lines
  manifests (the campaign-level analog of the sharding suite's
  guarantee);
* **golden-manifest regression** — the committed fixture
  (``fixtures/golden_manifest.jsonl``: 3 topologies x 2 corners) must
  be reproduced record for record, pinning scenario ids, fault counts,
  coverage and verdict digests across refactors.
"""

from pathlib import Path

import pytest

from repro.errors import TestGenerationError as GenError
from repro.scenarios import (
    CellRecord,
    load_spec,
    parse_spec,
    read_manifest,
    run_campaign,
    run_cell,
    summarize_manifest,
)
from repro.scenarios.families import (
    AxisSpec,
    TopologyFamily,
    register_family,
)

FIXTURES = Path(__file__).parent / "fixtures"

DET_SPEC = {
    "campaign": {"name": "det"},
    "topologies": [{"family": "rc-ladder",
                    "axes": {"n_sections": [2, 3, 4, 5]}}],
    "corners": ["tt", "rhi", "rlo"],
}


@pytest.fixture(scope="module")
def det_manifest_serial(tmp_path_factory):
    path = tmp_path_factory.mktemp("det") / "serial.jsonl"
    run_campaign(parse_spec(DET_SPEC), path, n_jobs=1)
    return path


class TestDeterminism:
    def test_worker_count_independence_bitwise(self, det_manifest_serial,
                                               tmp_path):
        """n_jobs=1 and n_jobs=4 produce bitwise-identical manifests."""
        parallel = tmp_path / "parallel.jsonl"
        run_campaign(parse_spec(DET_SPEC), parallel, n_jobs=4)
        assert parallel.read_bytes() == det_manifest_serial.read_bytes()

    def test_rerun_is_bitwise_stable(self, det_manifest_serial, tmp_path):
        again = tmp_path / "again.jsonl"
        run_campaign(parse_spec(DET_SPEC), again, n_jobs=1)
        assert again.read_bytes() == det_manifest_serial.read_bytes()

    def test_records_carry_no_wall_clock(self, det_manifest_serial):
        for record in read_manifest(det_manifest_serial):
            payload = record.to_dict()
            assert "time" not in str(sorted(payload)).lower()
            assert "seconds" not in str(sorted(payload)).lower()


class TestResume:
    def test_resume_skips_recorded_cells(self, tmp_path):
        spec = parse_spec(DET_SPEC)
        path = tmp_path / "manifest.jsonl"
        first = run_campaign(spec, path, n_jobs=1)
        assert first.n_cells == 12 and not first.skipped
        second = run_campaign(spec, path, n_jobs=1, resume=True)
        assert second.n_cells == 0
        assert len(second.skipped) == 12
        assert len(read_manifest(path)) == 12

    def test_resume_completes_a_partial_manifest(self, tmp_path):
        spec = parse_spec(DET_SPEC)
        full = tmp_path / "full.jsonl"
        run_campaign(spec, full, n_jobs=1)
        partial = tmp_path / "partial.jsonl"
        lines = full.read_text().splitlines()
        partial.write_text("\n".join(lines[:5]) + "\n")
        result = run_campaign(spec, partial, n_jobs=1, resume=True)
        assert result.n_cells == 7 and len(result.skipped) == 5
        recorded = {r.scenario_id for r in read_manifest(partial)}
        assert recorded == {r.scenario_id
                            for r in read_manifest(full)}

    def test_without_resume_manifest_is_rewritten(self, tmp_path):
        spec = parse_spec(DET_SPEC)
        path = tmp_path / "manifest.jsonl"
        run_campaign(spec, path, n_jobs=1)
        run_campaign(spec, path, n_jobs=1)  # no resume -> overwrite
        assert len(read_manifest(path)) == 12


class TestDegenerateCells:
    def test_failed_variant_recorded_not_raised(self):
        """A macro that cannot build becomes a 'failed' record."""

        class ExplodingMacro:
            def __init__(self, **kwargs):
                raise GenError("boom: unbuildable variant")

        from repro.macros.registry import register_macro
        try:
            register_macro("exploding", ExplodingMacro)
        except GenError:
            pass
        try:
            register_family(TopologyFamily(
                name="exploding", macro_type="exploding",
                axes=(AxisSpec("k", "int"),)))
        except GenError:
            pass
        spec = parse_spec({
            "campaign": {"name": "degen"},
            "topologies": [{"family": "exploding",
                            "axes": {"k": [1]}}],
        })
        result = run_campaign(spec)
        (record,) = result.records
        assert record.status == "failed"
        assert "boom" in record.error
        assert result.counts["failed"] == 1

    def test_run_cell_reports_lint_rejection(self, monkeypatch):
        """Lint errors mark the cell rejected with diagnostics."""
        from repro.lint.core import Diagnostic, LintReport
        from repro.scenarios import campaign as campaign_module

        def fake_lint(circuit, faults, configurations):
            return LintReport.from_iterable([Diagnostic(
                rule_id="circuit.fake", severity="error",
                subject="x", location="here", message="degenerate")])

        monkeypatch.setattr(campaign_module, "lint_scenario", fake_lint)
        spec = parse_spec({
            "campaign": {"name": "rej"},
            "topologies": [{"family": "rc-ladder",
                            "axes": {"n_sections": [2]}}],
        })
        (cell,) = spec.cells()
        record = run_cell(cell)
        assert record.status == "rejected"
        assert record.diagnostics[0]["rule"] == "circuit.fake"
        assert record.verdict_digest == ""


class TestManifestRoundTrip:
    def test_record_roundtrips_through_json(self, det_manifest_serial):
        for record in read_manifest(det_manifest_serial):
            clone = CellRecord.from_dict(record.to_dict())
            assert clone.to_json() == record.to_json()

    def test_malformed_manifest_line_named(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"scenario_id": "x"}\nnot json\n')
        with pytest.raises(GenError, match="line 1|line 2"):
            read_manifest(path)

    def test_summarize(self, det_manifest_serial):
        summary = summarize_manifest(read_manifest(det_manifest_serial))
        assert summary["n_cells"] == 12
        assert summary["status"]["ok"] == 12
        assert summary["families"]["rc-ladder"]["cells"] == 12
        assert set(summary["corners"]) == {"tt", "rhi", "rlo"}
        assert 0.0 < summary["mean_coverage"] <= 1.0


class TestGoldenManifest:
    def test_golden_campaign_reproduces_fixture(self, tmp_path):
        """3 topologies x 2 corners reproduce the committed manifest."""
        spec = load_spec(FIXTURES / "golden.toml")
        fresh = tmp_path / "golden.jsonl"
        run_campaign(spec, fresh, n_jobs=2)
        assert fresh.read_text() == \
            (FIXTURES / "golden_manifest.jsonl").read_text()
