"""Property-based sweep of the scenario space (satellite contract).

Seeded hypothesis sweeps over random in-range parameter points of the
cheap topology families pin three invariants the campaign engine leans
on:

* every generated variant's (circuit, dictionary, configurations)
  scenario passes the strict lint gate — the same bar as
  ``repro lint --strict``;
* every auto-derived dictionary's bridging universe survives
  :func:`repro.faults.dictionary.validate_fault_nodes` against the
  variant's own netlist;
* scenario ids are injective over distinct parameter tuples (and over
  corner and dictionary choices).

The op-amp families are sampled at their default point only (circuit
construction is orders of magnitude more expensive); their full grids
run in the campaign benchmarks.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.faults.dictionary import validate_fault_nodes
from repro.lint import lint_scenario
from repro.scenarios import DictionarySpec, get_family, scenario_id
from repro.tolerance import STANDARD_CORNERS, get_corner

SWEEP_SETTINGS = settings(
    max_examples=25, deadline=None, derandomize=True,
    suppress_health_check=(HealthCheck.too_slow,))


@st.composite
def ladder_variants(draw):
    """A random in-range variant of one of the cheap ladder families."""
    if draw(st.booleans()):
        family = get_family("rc-ladder")
        point = {"n_sections": draw(st.integers(2, 16))}
    else:
        family = get_family("active-filter")
        point = {"n_sections": draw(st.integers(2, 24)),
                 "fault_top_n": draw(st.integers(4, 20))}
    return family.variant(point)


@st.composite
def dictionary_specs(draw):
    if draw(st.booleans()):
        return DictionarySpec(label="x", kind="exhaustive")
    return DictionarySpec(
        label="x", kind="ifa",
        top_n=draw(st.one_of(st.none(), st.integers(3, 30))))


class TestScenarioProperties:
    @SWEEP_SETTINGS
    @given(ladder_variants())
    def test_every_variant_lints_strict(self, variant):
        """Generated topologies clear `repro lint --strict` wholesale."""
        macro = variant.build_macro()
        report = lint_scenario(macro.circuit, macro.fault_dictionary(),
                               macro.test_configurations())
        assert report.ok(strict=True), [
            d.render() for d in report.diagnostics]

    @SWEEP_SETTINGS
    @given(ladder_variants(), dictionary_specs())
    def test_every_dictionary_validates_nodes(self, variant, spec):
        """Auto-derived dictionaries name only real circuit nodes."""
        macro = variant.build_macro()
        faults = spec.derive(macro)
        assert len(tuple(faults)) >= 1
        validate_fault_nodes(macro.circuit, macro.standard_nodes)
        for fault in faults:
            bridged = [n for n in (getattr(fault, "node_a", ""),
                                   getattr(fault, "node_b", "")) if n]
            for node in bridged:
                assert macro.circuit.has_node(node)

    @SWEEP_SETTINGS
    @given(st.lists(ladder_variants(), min_size=2, max_size=6),
           st.sampled_from(sorted(STANDARD_CORNERS)),
           dictionary_specs())
    def test_scenario_ids_injective(self, variants, corner_name, spec):
        """Distinct parameter tuples never collide on scenario id."""
        corner = get_corner(corner_name)
        ids = {}
        for variant in variants:
            key = (variant.family.name, variant.parameters)
            sid = scenario_id(variant, corner, spec)
            if key in ids:
                assert ids[key] == sid  # same point -> same id
            else:
                assert sid not in ids.values()  # new point -> new id
                ids[key] = sid

    @SWEEP_SETTINGS
    @given(ladder_variants())
    def test_id_varies_over_corner_and_dictionary(self, variant):
        ids = {scenario_id(variant, get_corner(name), spec)
               for name in sorted(STANDARD_CORNERS)
               for spec in (DictionarySpec(),
                            DictionarySpec(top_n=5))}
        assert len(ids) == len(STANDARD_CORNERS) * 2
