"""Unit tests of the topology-family layer."""

import pytest

from repro.errors import TestGenerationError as GenError
from repro.scenarios import (
    AxisSpec,
    DictionarySpec,
    TopologyFamily,
    available_families,
    get_family,
    register_family,
)


class TestAxisSpec:
    def test_int_axis_accepts_integral(self):
        axis = AxisSpec("n", "int", lower=2, upper=8)
        assert axis.validate(4) == 4
        assert axis.validate(4.0) == 4

    def test_int_axis_rejects_bool_fraction_and_string(self):
        axis = AxisSpec("n", "int")
        for bad in (True, 2.5, "4"):
            with pytest.raises(GenError, match="'n'"):
                axis.validate(bad)

    def test_bounds_are_inclusive(self):
        axis = AxisSpec("x", "float", lower=1.0, upper=2.0)
        assert axis.validate(1.0) == 1.0
        assert axis.validate(2.0) == 2.0
        with pytest.raises(GenError, match="below lower"):
            axis.validate(0.5)
        with pytest.raises(GenError, match="above upper"):
            axis.validate(2.5)

    def test_quantity_axis_parses_unit_strings(self):
        axis = AxisSpec("c", "quantity", lower=1e-12, upper=100e-12)
        assert axis.validate("10p") == "10p"
        assert axis.validate(1e-11) == 1e-11
        with pytest.raises(GenError, match="above upper"):
            axis.validate("1u")
        with pytest.raises(GenError, match="unit string"):
            axis.validate(None)

    def test_unknown_kind_rejected(self):
        with pytest.raises(GenError, match="kind"):
            AxisSpec("x", "complex")


class TestDictionarySpec:
    def test_exhaustive_forbids_ifa_knobs(self):
        with pytest.raises(GenError, match="IFA"):
            DictionarySpec(label="x", kind="exhaustive", top_n=5)

    def test_derive_ifa_trims(self):
        family = get_family("rc-ladder")
        macro = family.variant({"n_sections": 3}).build_macro()
        full = DictionarySpec(label="full", kind="ifa").derive(macro)
        lean = DictionarySpec(label="lean", kind="ifa",
                              top_n=3).derive(macro)
        assert len(tuple(lean)) == 3 < len(tuple(full))

    def test_token_encodes_all_knobs(self):
        spec = DictionarySpec(label="l", kind="ifa", top_n=5,
                              min_likelihood=0.25)
        assert spec.token() == "l;ifa;top=5;min=0.25"


class TestFamilyExpansion:
    def test_shipped_families_registered(self):
        assert set(available_families()) >= {
            "rc-ladder", "active-filter", "two-stage-opamp",
            "folded-cascode-ota", "iv-converter"}

    def test_expand_cross_product_order(self):
        family = get_family("two-stage-opamp")
        variants = family.expand({"supply": [4.5, 5.0],
                                  "c_comp": ["5p", "10p"]})
        points = [v.params for v in variants]
        # axes sorted by name (c_comp before supply), values in order
        assert points == [
            {"c_comp": "5p", "supply": 4.5},
            {"c_comp": "5p", "supply": 5.0},
            {"c_comp": "10p", "supply": 4.5},
            {"c_comp": "10p", "supply": 5.0},
        ]

    def test_expand_empty_mapping_yields_default_variant(self):
        (variant,) = get_family("iv-converter").expand({})
        assert variant.parameters == ()
        assert variant.build_macro().macro_type == "iv-converter"

    def test_expand_rejects_empty_value_list(self):
        with pytest.raises(GenError, match="empty value"):
            get_family("rc-ladder").expand({"n_sections": []})

    def test_unknown_axis_rejected(self):
        with pytest.raises(GenError, match="no axis"):
            get_family("rc-ladder").variant({"sections": 4})

    def test_variant_builds_parameterized_macro(self):
        variant = get_family("rc-ladder").variant({"n_sections": 5})
        macro = variant.build_macro()
        assert macro.circuit.has_node("n4")
        assert not macro.circuit.has_node("n5")  # last section is vout

    def test_registry_rejects_silent_overwrite(self):
        family = TopologyFamily(name="rc-ladder", macro_type="rc-ladder")
        with pytest.raises(GenError, match="registered"):
            register_family(family)
        with pytest.raises(GenError, match="unknown"):
            get_family("no-such-family")
