"""Unit tests of deterministic process-corner application."""

import pytest

from repro.circuit.elements import Capacitor, Resistor
from repro.circuit.mosfet import Mosfet
from repro.errors import ToleranceError
from repro.macros import get_macro
from repro.tolerance import (
    STANDARD_CORNERS,
    apply_corner,
    available_corners,
    get_corner,
)
from repro.tolerance.corners import ProcessCorner


class TestCornerLibrary:
    def test_shipped_corners(self):
        assert set(available_corners()) == {
            "tt", "ss", "ff", "sf", "fs", "rhi", "rlo"}

    def test_unknown_corner_raises(self):
        with pytest.raises(ToleranceError, match="unknown"):
            get_corner("slow-slow")

    def test_tokens_distinct(self):
        tokens = {c.token() for c in STANDARD_CORNERS.values()}
        assert len(tokens) == len(STANDARD_CORNERS)

    def test_non_finite_draw_rejected(self):
        with pytest.raises(ToleranceError, match="finite"):
            ProcessCorner(name="bad", resistor=float("nan"))


class TestCornerApplication:
    def test_typical_returns_same_circuit(self):
        circuit = get_macro("rc-ladder").circuit
        assert get_corner("tt").apply(circuit) is circuit

    def test_rhi_scales_passives_up_rlo_down(self):
        circuit = get_macro("rc-ladder").circuit
        hi = apply_corner(circuit, "rhi")
        lo = apply_corner(circuit, "rlo")
        for element in circuit:
            if isinstance(element, Resistor):
                assert hi.element(element.name).resistance > element.resistance
                assert lo.element(element.name).resistance < element.resistance
            elif isinstance(element, Capacitor):
                assert hi.element(element.name).capacitance > element.capacitance
                assert lo.element(element.name).capacitance < element.capacitance

    def test_mos_corner_leaves_passives_untouched(self):
        circuit = get_macro("two-stage-opamp").circuit
        ss = apply_corner(circuit, "ss")
        saw_mosfet = False
        for element in circuit:
            skewed = ss.element(element.name)
            if isinstance(element, Resistor):
                assert skewed.resistance == element.resistance
            elif isinstance(element, Mosfet):
                saw_mosfet = True
                assert skewed.params.kp < element.params.kp
                assert abs(skewed.params.vto) > abs(element.params.vto)
        assert saw_mosfet

    def test_apply_is_deterministic(self):
        circuit = get_macro("two-stage-opamp").circuit
        first = apply_corner(circuit, "sf")
        second = apply_corner(circuit, "sf")
        assert first.to_netlist() == second.to_netlist()

    def test_corner_circuit_renamed(self):
        circuit = get_macro("rc-ladder").circuit
        assert apply_corner(circuit, "ff").name == f"{circuit.name}~ff"
