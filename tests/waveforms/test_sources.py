"""Unit and property tests for stimulus waveforms."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.waveforms import (
    DCWave,
    PWLWave,
    PulseWave,
    SineWave,
    StepWave,
    as_waveform,
)


class TestDCWave:
    def test_constant(self):
        w = DCWave(2.5)
        assert w.value_at(0.0) == 2.5
        assert w.value_at(1e6) == 2.5
        assert w.dc_value == 2.5

    def test_array_input(self):
        w = DCWave(1.0)
        np.testing.assert_array_equal(w.value_at(np.zeros(4)), np.ones(4))

    def test_as_waveform_coerces_numbers(self):
        assert isinstance(as_waveform(3), DCWave)
        assert as_waveform(3).level == 3.0

    def test_as_waveform_passthrough(self):
        w = SineWave()
        assert as_waveform(w) is w


class TestSineWave:
    def test_offset_and_peak(self):
        w = SineWave(offset=1.0, amplitude=0.5, freq=1e3)
        assert w.value_at(0.0) == pytest.approx(1.0)
        assert w.value_at(0.25e-3) == pytest.approx(1.5)
        assert w.value_at(0.75e-3) == pytest.approx(0.5)

    def test_dc_value_is_offset(self):
        assert SineWave(offset=2.0, amplitude=1.0).dc_value == 2.0

    def test_period(self):
        assert SineWave(freq=10e3).period == pytest.approx(100e-6)

    def test_delay_holds_offset(self):
        w = SineWave(offset=1.0, amplitude=1.0, freq=1e3, delay=1e-3)
        assert w.value_at(0.5e-3) == pytest.approx(1.0)

    def test_phase_degrees(self):
        w = SineWave(offset=0.0, amplitude=1.0, freq=1e3, phase_deg=90.0)
        assert w.value_at(0.0) == pytest.approx(1.0)

    @given(st.floats(0.0, 1e-2))
    def test_bounded_by_offset_plus_amplitude(self, t):
        w = SineWave(offset=1.0, amplitude=0.5, freq=1e3)
        assert 0.5 - 1e-12 <= w.value_at(t) <= 1.5 + 1e-12


class TestStepWave:
    def test_before_during_after(self):
        w = StepWave(base=1.0, elev=2.0, t_step=1e-6, slew_rate=2e6)
        assert w.value_at(0.0) == 1.0
        # ramp time = 2/2e6 = 1 us; midpoint at t = 1.5 us
        assert w.value_at(1.5e-6) == pytest.approx(2.0)
        assert w.value_at(5e-6) == pytest.approx(3.0)

    def test_negative_elevation(self):
        w = StepWave(base=2.0, elev=-1.0, t_step=0.0, slew_rate=1e6)
        assert w.value_at(10.0) == pytest.approx(1.0)
        assert w.ramp_time == pytest.approx(1e-6)

    def test_dc_value_is_base(self):
        assert StepWave(base=0.5, elev=1.0).dc_value == 0.5

    def test_rejects_non_positive_slew(self):
        with pytest.raises(ValueError):
            StepWave(slew_rate=0.0)

    @given(st.floats(0.0, 1e-3))
    def test_monotonic_rise(self, t):
        w = StepWave(base=0.0, elev=1.0, t_step=10e-6, slew_rate=1e5)
        assert w.value_at(t) <= w.value_at(t + 1e-6) + 1e-12


class TestPulseWave:
    def test_levels(self):
        w = PulseWave(v1=0.0, v2=5.0, td=1e-6, tr=1e-7, tf=1e-7,
                      pw=1e-6, per=4e-6)
        assert w.value_at(0.0) == 0.0
        assert w.value_at(1.5e-6) == pytest.approx(5.0)
        assert w.value_at(3e-6) == pytest.approx(0.0)

    def test_periodicity(self):
        w = PulseWave(v1=0.0, v2=1.0, td=0.0, tr=1e-9, tf=1e-9,
                      pw=1e-6, per=2e-6)
        assert w.value_at(0.5e-6) == pytest.approx(w.value_at(2.5e-6))

    def test_dc_value_is_v1(self):
        assert PulseWave(v1=0.3, v2=1.0).dc_value == pytest.approx(0.3)


class TestPWLWave:
    def test_interpolation(self):
        w = PWLWave(points=((0.0, 0.0), (1e-6, 2.0), (3e-6, 2.0)))
        assert w.value_at(0.5e-6) == pytest.approx(1.0)
        assert w.value_at(2e-6) == pytest.approx(2.0)

    def test_holds_endpoints(self):
        w = PWLWave(points=((1e-6, 1.0), (2e-6, 3.0)))
        assert w.value_at(0.0) == pytest.approx(1.0)
        assert w.value_at(10.0) == pytest.approx(3.0)

    def test_rejects_non_monotonic(self):
        with pytest.raises(ValueError):
            PWLWave(points=((1e-6, 0.0), (0.5e-6, 1.0)))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            PWLWave(points=())

    def test_str_roundtrippable_format(self):
        w = PWLWave(points=((0.0, 0.0), (1e-6, 5.0)))
        assert "PWL" in str(w)
