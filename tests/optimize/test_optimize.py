"""Unit and property tests for the Brent and Powell optimizers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import OptimizationError
from repro.optimize import (
    BudgetExhausted,
    CountedObjective,
    brent_minimize,
    powell_minimize,
)


class TestCountedObjective:
    def test_counts_and_tracks_best(self):
        counted = CountedObjective(lambda x: float(x[0]**2), max_evals=10)
        counted(np.array([3.0]))
        counted(np.array([1.0]))
        counted(np.array([2.0]))
        assert counted.nfev == 3
        assert counted.best_f == 1.0
        assert counted.best_x[0] == 1.0

    def test_budget_exhaustion_raises(self):
        counted = CountedObjective(lambda x: 0.0, max_evals=2)
        counted(np.array([0.0]))
        counted(np.array([0.0]))
        with pytest.raises(BudgetExhausted):
            counted(np.array([0.0]))

    def test_nan_treated_as_inf(self):
        counted = CountedObjective(lambda x: float("nan"), max_evals=5)
        assert counted(np.array([0.0])) == float("inf")

    def test_rejects_zero_budget(self):
        with pytest.raises(OptimizationError):
            CountedObjective(lambda x: 0.0, max_evals=0)


class TestBrent:
    def test_quadratic(self):
        r = brent_minimize(lambda x: (x[0] - 2.3)**2, 0.0, 10.0, xtol=1e-6)
        assert r.converged
        assert r.x[0] == pytest.approx(2.3, abs=1e-4)

    def test_minimum_at_bound(self):
        r = brent_minimize(lambda x: x[0], 1.0, 5.0, xtol=1e-6)
        assert r.x[0] == pytest.approx(1.0, abs=1e-3)

    def test_seed_respected(self):
        r = brent_minimize(lambda x: np.cos(x[0]), 0.0, 6.28, xtol=1e-5,
                           seed=3.0)
        assert r.x[0] == pytest.approx(np.pi, abs=1e-3)

    def test_seed_outside_interval_rejected(self):
        with pytest.raises(OptimizationError):
            brent_minimize(lambda x: 0.0, 0.0, 1.0, seed=2.0)

    def test_budget_returns_incumbent(self):
        r = brent_minimize(lambda x: (x[0] - 2.0)**2, 0.0, 10.0,
                           xtol=1e-12, max_evals=5)
        assert r.nfev == 5
        assert not r.converged
        assert np.isfinite(r.fun)

    def test_rejects_bad_interval(self):
        with pytest.raises(OptimizationError):
            brent_minimize(lambda x: 0.0, 5.0, 1.0)

    def test_rejects_bad_xtol(self):
        with pytest.raises(OptimizationError):
            brent_minimize(lambda x: 0.0, 0.0, 1.0, xtol=0.0)

    def test_history_non_increasing(self):
        r = brent_minimize(lambda x: (x[0] - 1.0)**4, -4.0, 6.0, xtol=1e-6)
        assert all(b <= a + 1e-15 for a, b in zip(r.history, r.history[1:]))

    @settings(max_examples=40)
    @given(center=st.floats(-4.0, 4.0), scale=st.floats(0.1, 10.0))
    def test_finds_minimum_of_random_quadratics(self, center, scale):
        r = brent_minimize(lambda x: scale * (x[0] - center)**2,
                           -5.0, 5.0, xtol=1e-6, max_evals=60)
        assert r.x[0] == pytest.approx(center, abs=1e-3)

    @settings(max_examples=25)
    @given(seed=st.floats(-4.9, 4.9))
    def test_seed_never_hurts_correctness(self, seed):
        r = brent_minimize(lambda x: abs(x[0] - 1.5), -5.0, 5.0,
                           xtol=1e-5, seed=seed, max_evals=60)
        assert r.x[0] == pytest.approx(1.5, abs=1e-2)


class TestPowell:
    BOUNDS = np.array([[-5.0, 5.0], [-5.0, 5.0]])

    def test_quadratic_with_cross_term(self):
        def f(x):
            return (x[0] - 1.0)**2 + 2 * (x[1] + 0.5)**2 + 0.5 * x[0] * x[1]
        r = powell_minimize(f, np.array([4.0, 4.0]), self.BOUNDS,
                            max_evals=200, max_iters=10)
        assert r.x[0] == pytest.approx(36 / 31, abs=0.02)
        assert r.x[1] == pytest.approx(-20 / 31, abs=0.02)

    def test_solution_respects_bounds(self):
        r = powell_minimize(lambda x: -(x[0] + x[1]), np.array([0.0, 0.0]),
                            np.array([[0, 1], [0, 2]]), max_evals=100)
        assert r.x[0] <= 1.0 + 1e-9
        assert r.x[1] <= 2.0 + 1e-9
        assert r.fun == pytest.approx(-3.0, abs=1e-3)

    def test_rosenbrock_with_tight_tolerances(self):
        def rb(x):
            return (1 - x[0])**2 + 100 * (x[1] - x[0]**2)**2
        r = powell_minimize(rb, np.array([-1.5, 2.0]),
                            np.array([[-2, 2], [-1, 3]]), max_evals=3000,
                            max_iters=60, line_evals=40, ftol=1e-10,
                            xtol_frac=1e-6)
        assert r.fun < 1e-4

    def test_x0_clipped_into_box(self):
        r = powell_minimize(lambda x: float(np.sum(x**2)),
                            np.array([10.0, -10.0]), self.BOUNDS,
                            max_evals=100)
        assert r.fun == pytest.approx(0.0, abs=1e-4)

    def test_budget_cap_respected(self):
        calls = []

        def f(x):
            calls.append(1)
            return float(np.sum(x**2))
        powell_minimize(f, np.array([4.0, 4.0]), self.BOUNDS, max_evals=30)
        assert len(calls) <= 30

    def test_rejects_malformed_bounds(self):
        with pytest.raises(OptimizationError):
            powell_minimize(lambda x: 0.0, np.array([0.0]),
                            np.array([[1.0, 0.0]]))

    def test_rejects_dimension_mismatch(self):
        with pytest.raises(OptimizationError):
            powell_minimize(lambda x: 0.0, np.array([0.0, 0.0, 0.0]),
                            self.BOUNDS)

    def test_three_dimensional(self):
        bounds = np.array([[-3, 3]] * 3)
        target = np.array([0.5, -1.0, 2.0])

        def f(x):
            return float(np.sum((x - target)**2))
        r = powell_minimize(f, np.zeros(3), bounds, max_evals=300,
                            max_iters=12)
        np.testing.assert_allclose(r.x, target, atol=0.02)

    def test_single_dimension_works_too(self):
        r = powell_minimize(lambda x: (x[0] - 2.0)**2, np.array([0.0]),
                            np.array([[-5.0, 5.0]]), max_evals=60)
        assert r.x[0] == pytest.approx(2.0, abs=0.01)

    @settings(max_examples=20, deadline=None)
    @given(cx=st.floats(-3.0, 3.0), cy=st.floats(-3.0, 3.0))
    def test_random_separable_quadratics(self, cx, cy):
        def f(x):
            return (x[0] - cx)**2 + (x[1] - cy)**2
        r = powell_minimize(f, np.array([0.0, 0.0]), self.BOUNDS,
                            max_evals=200, max_iters=10)
        assert r.x[0] == pytest.approx(cx, abs=0.05)
        assert r.x[1] == pytest.approx(cy, abs=0.05)

    def test_nested_budget_exhaustion_returns_incumbent(self):
        """Regression: when the Powell total budget runs dry exactly as
        an inner Brent line search starts, the incumbent must be
        returned instead of an assertion failure propagating."""
        def f(x):
            return float(np.sum((x - 0.3)**2))
        for budget in range(2, 40):
            r = powell_minimize(f, np.array([4.0, -4.0]), self.BOUNDS,
                                max_evals=budget, max_iters=10,
                                line_evals=7)
            assert np.isfinite(r.fun)
            assert r.nfev <= budget

    def test_result_repr_mentions_status(self):
        r = powell_minimize(lambda x: float(np.sum(x**2)),
                            np.array([1.0, 1.0]), self.BOUNDS,
                            max_evals=100)
        assert "OptimizationResult" in repr(r)
