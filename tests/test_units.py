"""Unit tests for engineering-notation parsing/formatting."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.units import ENG_SUFFIXES, format_value, parse_value


class TestParseValue:
    def test_plain_number(self):
        assert parse_value("42") == 42.0

    def test_float_passthrough(self):
        assert parse_value(3.5) == 3.5

    def test_int_passthrough(self):
        assert parse_value(7) == 7.0

    def test_kilo(self):
        assert parse_value("10k") == 10_000.0

    def test_micro(self):
        assert parse_value("2.5u") == pytest.approx(2.5e-6)

    def test_meg_beats_milli(self):
        assert parse_value("100meg") == 100e6

    def test_mil(self):
        assert parse_value("1mil") == pytest.approx(25.4e-6)

    def test_milli(self):
        assert parse_value("5m") == pytest.approx(5e-3)

    def test_nano_pico_femto(self):
        assert parse_value("3n") == pytest.approx(3e-9)
        assert parse_value("3p") == pytest.approx(3e-12)
        assert parse_value("3f") == pytest.approx(3e-15)

    def test_tera_giga(self):
        assert parse_value("1t") == 1e12
        assert parse_value("2g") == 2e9

    def test_case_insensitive(self):
        assert parse_value("10K") == 10_000.0
        assert parse_value("100MEG") == 100e6

    def test_trailing_unit_letters_ignored(self):
        assert parse_value("10kohm") == 10_000.0
        assert parse_value("5vdc") == 5.0

    def test_bare_unit_letters(self):
        assert parse_value("10ohm") == 10.0

    def test_scientific_notation(self):
        assert parse_value("1.5e-6") == pytest.approx(1.5e-6)

    def test_scientific_with_suffix(self):
        assert parse_value("1e3k") == pytest.approx(1e6)

    def test_negative(self):
        assert parse_value("-4.7u") == pytest.approx(-4.7e-6)

    def test_leading_dot(self):
        assert parse_value(".5k") == 500.0

    @pytest.mark.parametrize("bad", ["", "abc", "k10", "--5", "1..2"])
    def test_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            parse_value(bad)


class TestFormatValue:
    def test_kilo(self):
        assert format_value(10_400) == "10.4k"

    def test_unit_suffix(self):
        assert format_value(10_000, "ohm") == "10kohm"

    def test_micro(self):
        assert format_value(2.5e-6) == "2.5u"

    def test_zero(self):
        assert format_value(0.0) == "0"

    def test_negative(self):
        assert format_value(-3300) == "-3.3k"

    def test_infinity_passthrough(self):
        assert "inf" in format_value(math.inf)

    def test_unity_range(self):
        assert format_value(2.5) == "2.5"


class TestRoundTrip:
    @given(st.floats(min_value=1e-14, max_value=1e13,
                     allow_nan=False, allow_infinity=False))
    def test_format_parse_roundtrip(self, value):
        text = format_value(value, digits=12)
        assert parse_value(text) == pytest.approx(value, rel=1e-9)

    @given(st.sampled_from(sorted(ENG_SUFFIXES)),
           st.floats(min_value=0.1, max_value=999.0,
                     allow_nan=False, allow_infinity=False))
    def test_every_suffix_parses(self, suffix, mantissa):
        expected = mantissa * ENG_SUFFIXES[suffix]
        assert parse_value(f"{mantissa}{suffix}") == pytest.approx(expected)
