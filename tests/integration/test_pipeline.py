"""Integration tests: the complete ATPG pipeline end to end.

The RC ladder exercises every stage at full fidelity in milliseconds; the
IV-converter integration stays at smoke scale here (single faults, DC
configurations) — the full 55-fault evaluation lives in the benchmark
harness.
"""

import numpy as np
import pytest

from repro.compaction import (
    CompactionSettings,
    collapse_test_set,
    evaluate_coverage,
)
from repro.faults import BridgingFault, PinholeFault
from repro.macros import IVConverterMacro
from repro.testgen import (
    GenerationSettings,
    MacroTestbench,
    generate_test_for_fault,
    generate_tests,
)


class TestRCLadderPipeline:
    """Generation -> compaction -> coverage on the fast macro."""

    def test_full_flow(self, rc_macro, rc_generation, rc_bench):
        compaction = collapse_test_set(rc_generation, rc_bench,
                                       CompactionSettings(delta=0.1))
        assert compaction.n_compact_tests <= compaction.n_original_tests

        # Every fault that was detected at dictionary impact must remain
        # covered by the *compact* set.
        detected = [t for t in rc_generation.tests
                    if t.detected_at_dictionary]
        report = evaluate_coverage(rc_bench,
                                   [t.fault for t in detected],
                                   list(compaction.tests))
        assert report.fraction == 1.0

    def test_generation_deterministic(self, rc_macro, rc_generation):
        repeat = generate_tests(
            rc_macro.circuit, rc_macro.test_configurations(),
            rc_macro.fault_dictionary(), GenerationSettings())
        for a, b in zip(rc_generation.tests, repeat.tests):
            assert a.config_name == b.config_name
            assert a.critical_impact == pytest.approx(b.critical_impact)
            if a.test is not None:
                np.testing.assert_allclose(a.test.values, b.test.values)


class TestIVConverterSmoke:
    """Single-fault pipeline runs on the paper's macro (DC configs only,
    which keeps each test at a few dozen operating-point solves)."""

    @pytest.fixture(scope="class")
    def dc_bench(self, iv_macro):
        configs = [c for c in iv_macro.test_configurations()
                   if c.name.startswith("dc-")]
        return MacroTestbench(iv_macro.circuit, configs, iv_macro.options)

    def test_bridge_fault_generates(self, dc_bench):
        fault = BridgingFault(node_a="n1", node_b="n2", impact=10e3)
        generated = generate_test_for_fault(dc_bench, fault)
        assert generated.test is not None
        assert generated.sensitivity_at_critical < 0.0

    def test_pinhole_fault_generates(self, dc_bench):
        fault = PinholeFault(device="M4", impact=2e3)
        generated = generate_test_for_fault(dc_bench, fault)
        assert generated.test is not None

    def test_supply_bridge_prefers_idd(self, dc_bench):
        """A vdd-gnd bridge burns current but barely moves vout: the
        supply-current configuration must win."""
        fault = BridgingFault(node_a="vdd", node_b="0", impact=10e3)
        generated = generate_test_for_fault(dc_bench, fault)
        assert generated.config_name == "dc-supply-current"

    def test_output_bridge_detected(self, dc_bench):
        fault = BridgingFault(node_a="vout", node_b="0", impact=10e3)
        generated = generate_test_for_fault(dc_bench, fault)
        assert generated.detected_at_dictionary

    def test_thd_config_detects_distortion_fault(self, iv_macro):
        """The paper's Figs 2-4 fault (bridge n2-n3) must be strongly
        visible to the THD configuration at 10 kOhm."""
        configs = [c for c in iv_macro.test_configurations()
                   if c.name == "thd"]
        bench = MacroTestbench(iv_macro.circuit, configs,
                               iv_macro.options)
        fault = BridgingFault(node_a="n2", node_b="n3", impact=10e3)
        report = bench.sensitivity(fault, "thd", [20e-6, 20e3])
        assert report.detected
        assert report.value < -1.0
