"""Smoke tests running the example scripts end to end.

Each example is executed in-process (runpy) with argv patched for its
quickest configuration; the assertion is "runs to completion and prints
the expected landmarks", since the underlying behaviours are covered by
the unit and integration suites.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(capsys, monkeypatch, name, argv=()):
    monkeypatch.setattr(sys, "argv", [name, *argv])
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(capsys, monkeypatch):
    out = run_example(capsys, monkeypatch, "quickstart.py")
    assert "Optimal test per fault" in out
    assert "compacted" in out
    assert "coverage of compact set" in out


def test_custom_macro(capsys, monkeypatch):
    out = run_example(capsys, monkeypatch, "custom_macro.py")
    assert "cs-amplifier" in out
    assert "compact set" in out


def test_fault_impact_study(capsys, monkeypatch):
    out = run_example(capsys, monkeypatch, "fault_impact_study.py")
    assert "Critical impact levels" in out
    assert "Pinhole detectability" in out


def test_test_scheduling(capsys, monkeypatch):
    out = run_example(capsys, monkeypatch, "test_scheduling.py")
    assert "Greedy test schedule" in out
    assert "cumulative weighted coverage" in out


def test_campaign_sweep(capsys, monkeypatch):
    out = run_example(capsys, monkeypatch, "campaign_sweep.py")
    assert "15 cells" in out
    assert "15 ok, 0 rejected, 0 failed" in out
    assert "Campaign summary by family" in out


def test_examples_resolve_macros_via_registry():
    """Examples must go through the registry, not concrete classes."""
    for script in EXAMPLES.glob("*.py"):
        text = script.read_text()
        assert "IVConverterMacro(" not in text, script.name
        assert "RCLadderMacro(" not in text, script.name


@pytest.mark.slow
def test_tps_graph_exploration_quick(capsys, monkeypatch):
    out = run_example(capsys, monkeypatch, "tps_graph_exploration.py",
                      ["--quick"])
    assert "tps-graph" in out
    assert "impact-region classification" in out


@pytest.mark.slow
def test_iv_converter_atpg_subset(capsys, monkeypatch):
    out = run_example(capsys, monkeypatch, "iv_converter_atpg.py",
                      ["--faults", "2", "--jobs", "1"])
    assert "Best-test distribution" in out
    assert "compaction:" in out
