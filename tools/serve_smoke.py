#!/usr/bin/env python
"""Headless serving smoke check for CI.

Boots the ATPG server on a free loopback port, fires a burst of
concurrent mixed requests at it over real HTTP (full-dictionary screens,
shuffled subsets, and two different configurations), and checks:

* every served verdict is **bitwise identical** to a direct cold
  :class:`~repro.testgen.execution.TestExecutor` run;
* concurrent same-configuration clients coalesced into fewer family
  solves (nonzero coalesce ratio on ``/stats``);
* a repeat burst is served entirely from the verdict cache;
* ``/healthz`` answers.

Runs on the RC ladder so the whole check stays in CI-smoke territory.
Exit code 0 = all green, 1 = any violation.

Usage::

    PYTHONPATH=src python tools/serve_smoke.py
"""

from __future__ import annotations

import asyncio
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis import DEFAULT_OPTIONS  # noqa: E402
from repro.macros import RCLadderMacro  # noqa: E402
from repro.serve import (  # noqa: E402
    ATPGServer,
    BatchingFrontDoor,
    EnginePool,
    VerdictCache,
)
from repro.testgen.execution import TestExecutor  # noqa: E402

MACRO = "rc-ladder"
CONFIGS = ("dc-out", "step-mean")
CLIENTS_PER_CONFIG = 4


async def http(port: int, method: str, path: str, body=None):
    """One HTTP/1.1 exchange against the loopback server."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = b"" if body is None else json.dumps(body).encode("utf-8")
    head = f"{method} {path} HTTP/1.1\r\nHost: smoke\r\n"
    if body is not None:
        head += (f"Content-Type: application/json\r\n"
                 f"Content-Length: {len(payload)}\r\n")
    writer.write(head.encode("ascii") + b"\r\n" + payload)
    await writer.drain()
    response = await reader.read()
    writer.close()
    await writer.wait_closed()
    head_bytes, _, body_bytes = response.partition(b"\r\n\r\n")
    return int(head_bytes.split()[1]), json.loads(body_bytes)


def reference_verdicts(macro):
    """Direct cold-executor verdicts, the parity baseline."""
    configs = {c.name: c for c in macro.test_configurations()}
    faults = list(macro.fault_dictionary())
    reference = {}
    for name in CONFIGS:
        config = configs[name]
        vector = config.parameters.clip(list(config.seed_test().values))
        executor = TestExecutor(macro.circuit, config, DEFAULT_OPTIONS)
        reports = executor.screen_faults(faults, list(vector))
        reference[name] = {
            f.fault_id: (float(r.value),
                         [float(c) for c in r.components],
                         [float(d) for d in r.deviations],
                         [float(b) for b in r.boxes])
            for f, r in zip(faults, reports)}
    return reference


def check_parity(payload, reference, failures):
    for verdict in payload["verdicts"]:
        expected = reference[verdict["fault_id"]]
        got = (verdict["value"], verdict["components"],
               verdict["deviations"], verdict["boxes"])
        if got != expected:
            failures.append(
                f"verdict mismatch for {verdict['fault_id']}: "
                f"served {got[0]!r}, direct {expected[0]!r}")


async def run_smoke() -> int:
    macro = RCLadderMacro()
    fault_ids = [f.fault_id for f in macro.fault_dictionary()]
    reference = reference_verdicts(macro)

    door = BatchingFrontDoor(EnginePool(capacity=4),
                             VerdictCache(capacity=1024), window=0.05)
    server = ATPGServer(door, port=0)
    await server.start()
    failures: list[str] = []
    try:
        status, payload = await http(server.port, "GET", "/healthz")
        if (status, payload) != (200, {"ok": True}):
            failures.append(f"healthz: {status} {payload}")

        # Mixed concurrent burst: full screens and shuffled subsets on
        # both configurations, all in flight at once.
        def burst():
            requests = []
            for config in CONFIGS:
                requests.append({"macro": MACRO, "configuration": config})
                for k in range(CLIENTS_PER_CONFIG - 1):
                    subset = fault_ids[k::2] if k % 2 else fault_ids[::-1]
                    requests.append({"macro": MACRO,
                                     "configuration": config,
                                     "fault_ids": subset})
            return requests

        responses = await asyncio.gather(*[
            http(server.port, "POST", "/screen", body=request)
            for request in burst()])
        for request, (status, payload) in zip(burst(), responses):
            if status != 200:
                failures.append(f"screen {request}: HTTP {status} "
                                f"{payload}")
                continue
            check_parity(payload, reference[request["configuration"]],
                         failures)

        status, stats = await http(server.port, "GET", "/stats")
        if status != 200:
            failures.append(f"stats: HTTP {status}")
        serve_stats = stats.get("serve", {})
        if not serve_stats.get("coalesce_ratio", 0.0) > 0.0:
            failures.append(
                f"concurrent clients never coalesced: {serve_stats}")
        if serve_stats.get("errors", 1) != 0:
            failures.append(f"serving errors: {serve_stats}")

        # A repeat burst must be pure cache traffic.
        repeats = await asyncio.gather(*[
            http(server.port, "POST", "/screen", body=request)
            for request in burst()])
        for status, payload in repeats:
            if status != 200:
                failures.append(f"repeat burst: HTTP {status}")
            elif not all(v["cached"] for v in payload["verdicts"]):
                failures.append("repeat burst was not fully cached")

        total = len(responses) + len(repeats)
        print(f"serve smoke: {total} request(s) over "
              f"{len(CONFIGS)} configuration(s), coalesce ratio "
              f"{serve_stats.get('coalesce_ratio', 0.0):.2f}, "
              f"{len(failures)} failure(s)")
    finally:
        await server.stop()

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def main() -> int:
    return asyncio.run(run_smoke())


if __name__ == "__main__":
    raise SystemExit(main())
