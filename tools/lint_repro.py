#!/usr/bin/env python3
"""Repo-level AST linter enforcing the backend and determinism contracts.

Two rule families, both pure ``ast`` (no third-party imports, no code
execution):

``REPRO-LINALG``
    Dense/sparse factorization and solve entry points
    (``numpy.linalg.solve``/``inv``/``lstsq``/``pinv``/``tensorsolve``,
    ``scipy.linalg.lu_factor``/``lu_solve``/``solve``/``inv``,
    ``scipy.sparse.linalg.splu``/``spsolve``) may only be called from
    ``src/repro/analysis/backend.py``.  Everything else must go through
    the backend operators (``static_operator`` / ``solve_dense`` / ...)
    so the dense/sparse dispatch policy and the
    :class:`SingularMatrixError` contract stay in one file.

``REPRO-NONDET``
    Modules reachable from the sharded execution paths
    (``repro.testgen.sharding``, ``repro.testgen.generator``,
    ``repro.tolerance.montecarlo``) and from the serving layer
    (``repro.serve``) must be bitwise deterministic: no wall-clock
    reads that leak into results (``time.time`` / ``time.time_ns``;
    monotonic timers for *budgets* are fine), no unseeded
    ``numpy.random.default_rng()``, no global ``numpy.random.*``
    mutators or samplers, and no stdlib ``random`` calls.  Shard-merge
    invariance (PR 5/6) and served-verdict bitwise identity (PR 9)
    depend on this.

    Within ``repro.serve`` the discipline is stricter: **only**
    ``repro.serve.metrics`` may read the monotonic clock
    (``time.monotonic`` / ``time.perf_counter`` and their ``_ns``
    forms).  Metrics is the serving layer's single clock boundary —
    latency numbers are observability output and must never flow into
    a verdict, which is easiest to audit when every clock read lives
    in one module.

Usage::

    python tools/lint_repro.py              # lint src/repro with the
                                            # reachability-scoped rules
    python tools/lint_repro.py FILE [...]   # lint explicit files with
                                            # ALL rules active
    python tools/lint_repro.py --as-module repro.serve.frontdoor FILE
                                            # lint a fixture file with
                                            # the rule scoping of the
                                            # named module

Violations print as ``path:line:col: RULE message`` and the exit status
is 1.  Import aliases are resolved (``import numpy as np``,
``from numpy.linalg import solve as s``, ...), so renaming the import
does not evade the rule.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src"
PACKAGE_ROOT = SRC_ROOT / "repro"

#: The single module allowed to touch raw factorization routines.
BACKEND_MODULE = "repro.analysis.backend"

#: Fully qualified callables banned outside the backend module.
BANNED_LINALG = {
    "numpy.linalg.solve",
    "numpy.linalg.inv",
    "numpy.linalg.lstsq",
    "numpy.linalg.pinv",
    "numpy.linalg.tensorsolve",
    "scipy.linalg.lu_factor",
    "scipy.linalg.lu_solve",
    "scipy.linalg.solve",
    "scipy.linalg.inv",
    "scipy.sparse.linalg.splu",
    "scipy.sparse.linalg.spsolve",
}

#: Wall-clock reads banned in deterministic modules.  ``time.monotonic``
#: and ``time.perf_counter`` are allowed: they only gate *budgets*, the
#: produced numbers never depend on them.
BANNED_CLOCK = {"time.time", "time.time_ns"}

#: Monotonic clock reads — allowed in general, but inside the serving
#: package they are confined to :data:`SERVE_CLOCK_MODULE`.
MONOTONIC_CLOCK = {"time.monotonic", "time.monotonic_ns",
                   "time.perf_counter", "time.perf_counter_ns"}

#: The serving package prefix the clock confinement applies to.
SERVE_PACKAGE = "repro.serve"

#: The single serving module allowed to read the monotonic clock.
SERVE_CLOCK_MODULE = "repro.serve.metrics"

#: ``numpy.random`` attributes that are fine to call: everything else on
#: the module is either the legacy global state or a global sampler.
ALLOWED_NP_RANDOM = {"default_rng", "Generator", "SeedSequence", "PCG64"}

#: Entry points of the sharded execution and serving paths; every
#: module reachable from these (over ``repro.*`` imports) must be
#: deterministic.
DETERMINISM_SEEDS = (
    "repro.testgen.sharding",
    "repro.testgen.generator",
    "repro.tolerance.montecarlo",
    "repro.serve",
    "repro.scenarios",
)


def in_serve_package(name: str | None) -> bool:
    """True when *name* is the serving package or a module inside it."""
    return name is not None and (
        name == SERVE_PACKAGE or name.startswith(SERVE_PACKAGE + "."))


def module_name(path: Path) -> str | None:
    """Dotted module name for a file under ``src/``, else ``None``."""
    try:
        rel = path.resolve().relative_to(SRC_ROOT)
    except ValueError:
        return None
    parts = list(rel.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts) if parts else None


def parse(path: Path) -> ast.AST | None:
    try:
        return ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    except SyntaxError as exc:  # surfaced as a finding, not a crash
        print(f"{path}:{exc.lineno or 0}:{exc.offset or 0}: "
              f"REPRO-SYNTAX {exc.msg}", file=sys.stderr)
        return None


class AliasCollector(ast.NodeVisitor):
    """Map local names to the dotted import paths they stand for."""

    def __init__(self) -> None:
        self.aliases: dict[str, str] = {}
        #: repro.* modules this file imports (edges of the import graph).
        self.repro_imports: set[str] = set()

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.asname:
                self.aliases[alias.asname] = alias.name
            else:
                # ``import scipy.sparse.linalg`` binds ``scipy``; the
                # attribute chain resolves the rest.
                root = alias.name.split(".", 1)[0]
                self.aliases.setdefault(root, root)
            if alias.name.split(".", 1)[0] == "repro":
                self.repro_imports.add(alias.name)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = node.module or ""
        if node.level:  # relative import — anchor at the package
            base = "repro" if not base else f"repro.{base}"
        for alias in node.names:
            if alias.name == "*":
                continue
            full = f"{base}.{alias.name}" if base else alias.name
            self.aliases[alias.asname or alias.name] = full
            if base.split(".", 1)[0] == "repro":
                # The imported name may itself be a module; record both
                # candidates and let the graph keep the ones that exist.
                self.repro_imports.add(base)
                self.repro_imports.add(full)
        self.generic_visit(node)


def dotted_name(node: ast.expr, aliases: dict[str, str]) -> str | None:
    """Resolve ``np.linalg.solve``-style expressions to a full path."""
    chain: list[str] = []
    while isinstance(node, ast.Attribute):
        chain.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = aliases.get(node.id)
    if root is None:
        return None
    chain.append(root)
    return ".".join(reversed(chain))


def lint_file(path: Path, *, check_linalg: bool,
              check_determinism: bool,
              check_serve_clock: bool = False) -> list[str]:
    """All rule violations in one file, formatted for printing."""
    tree = parse(path)
    if tree is None:
        return [f"{path}:0:0: REPRO-SYNTAX file does not parse"]
    collector = AliasCollector()
    collector.visit(tree)
    aliases = collector.aliases
    problems: list[str] = []

    def report(node: ast.AST, rule: str, message: str) -> None:
        problems.append(f"{path}:{node.lineno}:{node.col_offset}: "
                        f"{rule} {message}")

    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func, aliases)
        if name is None:
            continue
        if check_linalg and name in BANNED_LINALG:
            report(node, "REPRO-LINALG",
                   f"direct call to {name}; route it through "
                   f"src/repro/analysis/backend.py (solve_dense / "
                   f"static_operator) so dispatch and singular-matrix "
                   f"handling stay centralized")
        if check_serve_clock and name in MONOTONIC_CLOCK:
            report(node, "REPRO-NONDET",
                   f"{name} in serving code outside "
                   f"{SERVE_CLOCK_MODULE}; the serving layer's only "
                   f"clock boundary is the metrics module (pass timer "
                   f"tokens around instead)")
        if not check_determinism:
            continue
        if name in BANNED_CLOCK:
            report(node, "REPRO-NONDET",
                   f"{name} in a sharding-reachable module; wall-clock "
                   f"values break shard-merge determinism (use "
                   f"time.monotonic for budgets)")
        elif name == "numpy.random.default_rng" and not (
                node.args or node.keywords):
            report(node, "REPRO-NONDET",
                   "numpy.random.default_rng() without a seed in a "
                   "sharding-reachable module; thread an explicit seed "
                   "through instead")
        elif (name.startswith("numpy.random.")
              and name.split(".")[2] not in ALLOWED_NP_RANDOM):
            report(node, "REPRO-NONDET",
                   f"global-state RNG call {name} in a "
                   f"sharding-reachable module; use a seeded "
                   f"numpy.random.default_rng(seed) generator")
        elif name.split(".", 1)[0] == "random" and "." in name:
            report(node, "REPRO-NONDET",
                   f"stdlib {name} call in a sharding-reachable "
                   f"module; the stdlib RNG is process-global and "
                   f"unseeded here")
    return problems


def package_files() -> dict[str, Path]:
    """Every ``repro.*`` module name -> source path."""
    modules: dict[str, Path] = {}
    for path in sorted(PACKAGE_ROOT.rglob("*.py")):
        name = module_name(path)
        if name:
            modules[name] = path
    return modules


def reachable_modules(modules: dict[str, Path]) -> set[str]:
    """BFS over repro-internal imports from the determinism seeds."""
    edges: dict[str, set[str]] = {}
    for name, path in modules.items():
        tree = parse(path)
        if tree is None:
            continue
        collector = AliasCollector()
        collector.visit(tree)
        # Keep only names that are actual modules; ``from x import fn``
        # also recorded ``x.fn``, which drops out here.
        edges[name] = {imp for imp in collector.repro_imports
                       if imp in modules}
    reachable: set[str] = set()
    queue = [seed for seed in DETERMINISM_SEEDS if seed in modules]
    while queue:
        current = queue.pop()
        if current in reachable:
            continue
        reachable.add(current)
        queue.extend(edges.get(current, ()))
    return reachable


def main(argv: list[str]) -> int:
    as_module: str | None = None
    explicit: list[Path] = []
    args = list(argv)
    while args:
        arg = args.pop(0)
        if arg == "--as-module":
            if not args:
                print("--as-module needs a module name", file=sys.stderr)
                return 2
            as_module = args.pop(0)
        else:
            explicit.append(Path(arg))
    if as_module is not None and not explicit:
        print("--as-module needs explicit files to lint", file=sys.stderr)
        return 2
    problems: list[str] = []
    if explicit:
        # Explicit files: every rule active, no reachability scoping —
        # this is the mode tests use to lint fixture snippets.
        # ``--as-module`` overrides the path-derived module name, so a
        # fixture can be linted with the scoping of any repro module
        # (serve clock confinement, backend exemption).
        for path in explicit:
            if not path.exists():
                print(f"{path}: no such file", file=sys.stderr)
                return 2
            name = as_module if as_module is not None \
                else module_name(path)
            problems.extend(lint_file(
                path,
                check_linalg=(name != BACKEND_MODULE),
                check_determinism=True,
                check_serve_clock=(in_serve_package(name)
                                   and name != SERVE_CLOCK_MODULE)))
    else:
        modules = package_files()
        if not modules:
            print(f"no package sources under {PACKAGE_ROOT}",
                  file=sys.stderr)
            return 2
        deterministic = reachable_modules(modules)
        for name in sorted(modules):
            problems.extend(lint_file(
                modules[name],
                check_linalg=(name != BACKEND_MODULE),
                check_determinism=(name in deterministic),
                check_serve_clock=(in_serve_package(name)
                                   and name != SERVE_CLOCK_MODULE)))
        print(f"checked {len(modules)} modules "
              f"({len(deterministic)} sharding-reachable)")
    for problem in sorted(problems):
        print(problem, file=sys.stderr)
    if problems:
        print(f"{len(problems)} contract violation(s)", file=sys.stderr)
        return 1
    print("backend and determinism contracts hold")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
