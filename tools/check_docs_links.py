#!/usr/bin/env python3
"""Verify that documentation links and code references resolve.

Checks, for README.md and every markdown file under docs/:

* relative markdown links ``[text](path)`` point at files that exist
  (anchors and external ``http(s)``/``mailto`` links are skipped);
* backtick references that look like repo paths (``src/...``,
  ``benchmarks/...``, ``docs/...``, ``examples/...``, ``tests/...``)
  point at existing files or directories.

Exits non-zero listing every broken reference, so CI fails when a rename
orphans the docs.  Run from anywhere: paths resolve against the repo
root (the parent of this file's directory).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Markdown inline links: [text](target)
LINK_RE = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")

#: Backticked repo paths: `src/repro/analysis/mna.py`, `docs/...`, ...
CODE_PATH_RE = re.compile(
    r"`((?:src|docs|benchmarks|examples|tests|results)/[A-Za-z0-9_./-]+)`")

SKIP_SCHEMES = ("http://", "https://", "mailto:")


def document_paths() -> list[Path]:
    """README plus every markdown file under docs/."""
    documents = [REPO_ROOT / "README.md"]
    docs_dir = REPO_ROOT / "docs"
    if docs_dir.is_dir():
        documents.extend(sorted(docs_dir.glob("*.md")))
    return [d for d in documents if d.exists()]


def broken_references(document: Path) -> list[str]:
    """All unresolvable links/path references in one document."""
    text = document.read_text(encoding="utf-8")
    problems: list[str] = []
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
            continue
        target = target.split("#", 1)[0]
        if not target:
            continue
        resolved = (document.parent / target).resolve()
        if not resolved.exists():
            problems.append(f"link -> {match.group(1)}")
    for match in CODE_PATH_RE.finditer(text):
        if not (REPO_ROOT / match.group(1)).exists():
            problems.append(f"code path -> {match.group(1)}")
    return problems


def main() -> int:
    documents = document_paths()
    if not documents:
        print("no documentation files found", file=sys.stderr)
        return 1
    failures = 0
    for document in documents:
        for problem in broken_references(document):
            rel = document.relative_to(REPO_ROOT)
            print(f"BROKEN  {rel}: {problem}", file=sys.stderr)
            failures += 1
    checked = ", ".join(str(d.relative_to(REPO_ROOT)) for d in documents)
    if failures:
        print(f"{failures} broken reference(s) in: {checked}",
              file=sys.stderr)
        return 1
    print(f"all documentation references resolve ({checked})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
